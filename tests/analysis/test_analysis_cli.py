"""CLI behaviour: exit codes, formats, baselines, explain, meta-check."""

from __future__ import annotations

import json
import subprocess

import pytest

from _fixtures import write_file
from repro.analysis.baseline import PLACEHOLDER_JUSTIFICATION
from repro.analysis.cli import main
from repro.analysis.rules import ALL_RULES

MUTABLE_DEFAULT = """
    def collect(values, seen=[]):
        return seen
"""

#: One seeded violation per project rule — each must drive a non-zero
#: exit when pointed at directly (the ISSUE 7 acceptance check).
SEEDED = {
    "R1": (
        "repro/graph/digraph.py",
        """
        class Graph:
            def add_edge(self, u, v):
                self._adj[u].append(v)
                self._emit(DeltaOp(ADD_EDGE, u, v))
        """,
    ),
    "R2": (
        "repro/topk/wrapper.py",
        """
        def top_k(pattern, graph, k, use_csr=None):
            return run(pattern, graph, k, bool(use_csr))
        """,
    ),
    "R3": (
        "repro/topk/hot.py",
        """
        from repro.obs import trace

        def run(batches):
            for batch in batches:
                with trace("engine.batch"):
                    batch.run()
        """,
    ),
    "R4": (
        "repro/session/peek.py",
        """
        def peek(engine):
            return engine._pending_bits
        """,
    ),
    "R5": ("repro/util.py", MUTABLE_DEFAULT),
    "R7": (
        "repro/graph/csr.py",
        """
        class CSRSnapshot:
            __slots__ = ("indptr", "_shard_lock")
            _TRANSIENT_SLOTS = ()

            def __getstate__(self):
                return {}
        """,
    ),
    "R8": (
        "repro/parallel/pools.py",
        """
        import threading

        _POOLS = {}
        _POOLS_LOCK = threading.Lock()

        def get_pool(workers):
            with _POOLS_LOCK:
                _POOLS[workers] = object()

        def drop_pool(workers):
            _POOLS.pop(workers, None)
        """,
    ),
    "R9": (
        "repro/session/cache.py",
        """
        class SessionCache:
            def bucket(self, snapshot, label):
                key = ("bucket", snapshot, label)
                return self._store.get(key)
        """,
    ),
    # The field name must not occur in the real test tree: single-file
    # targets anchor at the repo root, so R10's corpus is tests/.
    "R10": (
        "repro/session/config.py",
        """
        class ExecutionConfig:
            frobnicate_mode: bool = False
        """,
    ),
}


class TestSeededViolations:
    @pytest.mark.parametrize("rule_id", sorted(SEEDED))
    def test_each_rule_fails_on_its_seeded_violation(
        self, rule_id, tmp_path, capsys
    ):
        rel, source = SEEDED[rule_id]
        path = write_file(tmp_path, rel, source)
        assert main([str(path), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert f"{rule_id} (" in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write_file(
            tmp_path, "repro/util.py", "def collect(values):\n    return values\n"
        )
        assert main([str(path), "--no-baseline"]) == 0


class TestFormats:
    def test_json_report_is_parseable_and_fingerprinted(self, tmp_path, capsys):
        path = write_file(tmp_path, "repro/util.py", MUTABLE_DEFAULT)
        assert main([str(path), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["summary"]["new"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "R5"
        assert "::" in finding["fingerprint"]

    def test_verbose_text_shows_suppressed(self, tmp_path, capsys):
        path = write_file(
            tmp_path,
            "repro/util.py",
            "def collect(values, seen=[]):  # repro: noqa[R5]\n    return seen\n",
        )
        assert main([str(path), "--no-baseline", "-v"]) == 0
        assert "suppressed (# repro: noqa):" in capsys.readouterr().out


class TestRuleSelection:
    def test_rules_filter_limits_the_run(self, tmp_path, capsys):
        path = write_file(tmp_path, "repro/util.py", MUTABLE_DEFAULT)
        assert main([str(path), "--no-baseline", "--rules", "R6"]) == 0

    def test_unknown_rule_id_is_a_usage_error(self, tmp_path, capsys):
        path = write_file(tmp_path, "repro/util.py", MUTABLE_DEFAULT)
        assert main([str(path), "--rules", "R99"]) == 2

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.py")]) == 2


class TestExplainAndList:
    def test_list_rules_names_all_six(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out

    @pytest.mark.parametrize("rule", ALL_RULES, ids=lambda r: r.id)
    def test_explain_prints_rationale_and_provenance(self, rule, capsys):
        assert main(["--explain", rule.id]) == 0
        out = capsys.readouterr().out
        assert rule.title in out
        assert "Motivated by:" in out
        assert f"noqa[{rule.id}]" in out

    def test_explain_unknown_rule_is_a_usage_error(self, capsys):
        assert main(["--explain", "R99"]) == 2


class TestBaselineWorkflow:
    def test_write_then_justify_then_pass_then_go_stale(self, tmp_path, capsys):
        path = write_file(tmp_path, "repro/util.py", MUTABLE_DEFAULT)
        baseline = tmp_path / "baseline.json"

        # 1. Grandfather the finding.
        assert main([str(path), "--baseline", str(baseline), "--write-baseline"]) == 0
        payload = json.loads(baseline.read_text())
        (entry,) = payload["findings"]
        assert entry["justification"] == PLACEHOLDER_JUSTIFICATION

        # 2. The placeholder is rejected until a human justifies it.
        assert main([str(path), "--baseline", str(baseline)]) == 1
        assert "without justification" in capsys.readouterr().err

        # 3. Justified: the finding is baselined, the run passes.
        entry["justification"] = "legacy sentinel, scheduled for PR 8"
        baseline.write_text(json.dumps(payload))
        assert main([str(path), "--baseline", str(baseline)]) == 0

        # 4. Fixing the code makes the entry stale — and that fails too,
        #    so the baseline can only shrink deliberately.
        path.write_text("def collect(values, seen=None):\n    return seen\n")
        assert main([str(path), "--baseline", str(baseline)]) == 1
        assert "stale baseline" in capsys.readouterr().out

        # 5. --write-baseline prunes it back to empty.
        assert main([str(path), "--baseline", str(baseline), "--write-baseline"]) == 0
        assert json.loads(baseline.read_text())["findings"] == []

    def test_no_baseline_ignores_the_file(self, tmp_path, capsys):
        path = write_file(tmp_path, "repro/util.py", MUTABLE_DEFAULT)
        baseline = tmp_path / "baseline.json"
        assert main([str(path), "--baseline", str(baseline), "--write-baseline"]) == 0
        assert main([str(path), "--baseline", str(baseline), "--no-baseline"]) == 1


def _clean_tree(tmp_path):
    """Two clean source files under one throwaway analysis root."""
    root = tmp_path / "proj"
    write_file(root, "repro/util.py", "def collect(values):\n    return values\n")
    write_file(root, "repro/extra.py", "def double(value):\n    return value * 2\n")
    return root


class TestFindingsCache:
    def test_second_run_is_served_from_cache(self, tmp_path, capsys):
        root = _clean_tree(tmp_path)
        assert main([str(root)]) == 0
        assert "(0 from cache)" in capsys.readouterr().err
        assert (root / ".repro-analysis-cache" / "findings.json").exists()

        assert main([str(root)]) == 0
        assert "(2 from cache)" in capsys.readouterr().err

    def test_comment_edit_elsewhere_keeps_other_entries_warm(
        self, tmp_path, capsys
    ):
        root = _clean_tree(tmp_path)
        assert main([str(root)]) == 0
        capsys.readouterr()
        # A comment changes the file's content hash but none of the
        # cross-module facts: only the edited file re-checks.
        target = root / "repro" / "util.py"
        target.write_text(target.read_text() + "# trailing note\n")
        assert main([str(root)]) == 0
        assert "(1 from cache)" in capsys.readouterr().err

    def test_no_cache_flag_skips_cache_entirely(self, tmp_path, capsys):
        root = _clean_tree(tmp_path)
        assert main([str(root), "--no-cache"]) == 0
        assert not (root / ".repro-analysis-cache").exists()

    def test_cached_findings_still_fail_the_run(self, tmp_path, capsys):
        root = tmp_path / "proj"
        write_file(root, "repro/util.py", MUTABLE_DEFAULT)
        assert main([str(root), "--no-baseline"]) == 1
        capsys.readouterr()
        assert main([str(root), "--no-baseline"]) == 1
        captured = capsys.readouterr()
        assert "(1 from cache)" in captured.err
        assert "R5 (" in captured.out


class TestChangedScope:
    def _git(self, root, *argv):
        subprocess.run(
            ["git", "-C", str(root), *argv],
            check=True,
            capture_output=True,
        )

    def _committed_tree(self, tmp_path):
        root = _clean_tree(tmp_path)
        self._git(root, "init", "-q")
        self._git(root, "add", ".")
        self._git(
            root,
            "-c",
            "user.email=ci@example.invalid",
            "-c",
            "user.name=ci",
            "commit",
            "-qm",
            "seed",
        )
        return root

    def test_changed_scopes_to_modified_files(self, tmp_path, capsys):
        root = self._committed_tree(tmp_path)
        (root / "repro" / "util.py").write_text(
            "def collect(values):\n    return list(values)\n"
        )
        assert main([str(root), "--changed", "--no-cache"]) == 0
        err = capsys.readouterr().err
        assert "checked 1 file(s)" in err
        assert "[changed-only]" in err

    def test_changed_with_clean_tree_checks_nothing(self, tmp_path, capsys):
        root = self._committed_tree(tmp_path)
        assert main([str(root), "--changed", "--no-cache"]) == 0
        assert "checked 0 file(s)" in capsys.readouterr().err

    def test_changed_finds_violations_in_touched_files(self, tmp_path, capsys):
        root = self._committed_tree(tmp_path)
        (root / "repro" / "util.py").write_text(
            "def collect(values, seen=[]):\n    return seen\n"
        )
        assert main([str(root), "--changed", "--no-baseline", "--no-cache"]) == 1
        assert "R5 (" in capsys.readouterr().out

    def test_changed_outside_a_work_tree_is_a_usage_error(
        self, tmp_path, capsys
    ):
        root = _clean_tree(tmp_path)
        assert main([str(root), "--changed", "--no-cache"]) == 2
        assert "git work tree" in capsys.readouterr().err


class TestJobs:
    def test_parallel_run_matches_serial(self, tmp_path, capsys):
        root = tmp_path / "proj"
        write_file(root, "repro/util.py", MUTABLE_DEFAULT)
        write_file(root, "repro/extra.py", "def double(value):\n    return value * 2\n")
        serial = main([str(root), "--no-baseline", "--no-cache", "--format", "json"])
        serial_payload = json.loads(capsys.readouterr().out)
        parallel = main(
            [str(root), "--no-baseline", "--no-cache", "--jobs", "2", "--format", "json"]
        )
        parallel_payload = json.loads(capsys.readouterr().out)
        assert serial == parallel == 1
        assert serial_payload["findings"] == parallel_payload["findings"]


class TestSarif:
    def test_sarif_log_structure_and_exit_code(self, tmp_path, capsys):
        root = tmp_path / "proj"
        write_file(root, "repro/util.py", MUTABLE_DEFAULT)
        out = tmp_path / "out" / "analysis.sarif"
        assert (
            main(
                [
                    str(root),
                    "--no-baseline",
                    "--no-cache",
                    "--format",
                    "sarif",
                    "--output",
                    str(out),
                ]
            )
            == 1
        )
        log = json.loads(out.read_text())
        # The SARIF 2.1.0 envelope code scanning requires.
        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-2.1.0.json")
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro.analysis"
        assert {rule["id"] for rule in driver["rules"]} == {
            rule.id for rule in ALL_RULES
        }
        (result,) = run["results"]
        assert result["ruleId"] == "R5"
        assert result["level"] == "error"
        assert "partialFingerprints" in result
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "repro/util.py"
        assert location["region"]["startLine"] >= 1

    def test_suppressed_findings_marked_in_sarif(self, tmp_path, capsys):
        root = tmp_path / "proj"
        write_file(
            root,
            "repro/util.py",
            "def collect(values, seen=[]):  # repro: noqa[R5]\n    return seen\n",
        )
        assert (
            main(
                [str(root), "--no-baseline", "--no-cache", "--format", "sarif"]
            )
            == 0
        )
        log = json.loads(capsys.readouterr().out)
        (result,) = log["runs"][0]["results"]
        assert result["suppressions"] == [{"kind": "inSource"}]


class TestLiveTree:
    def test_repo_is_clean_modulo_committed_baseline(self, capsys):
        """The meta-check: `python -m repro.analysis` passes on the tree.

        This is the tier-2 gate ISSUE 7 asks for — any new violation of
        R1–R6 anywhere under src/repro fails this test until fixed,
        suppressed with a justified noqa, or deliberately baselined.
        """
        code = main([])
        output = capsys.readouterr().out
        assert code == 0, f"repro.analysis found new violations:\n{output}"
