"""Per-rule fixture tests: one violating snippet + its clean twin."""

from __future__ import annotations

from _fixtures import INVALIDATION_FIXTURE, check

# ----------------------------------------------------------------------
# R1 part A — digraph mutators must invalidate before emitting
# ----------------------------------------------------------------------


class TestR1Mutators:
    def test_missing_invalidate_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/graph/digraph.py": """
                    class Graph:
                        def add_edge(self, u, v):
                            self._adj[u].append(v)
                            self._emit(DeltaOp(ADD_EDGE, u, v))
                """
            },
            "R1",
        )
        assert len(report.new) == 1
        assert "mutator-missing-invalidate:add_edge" in report.new[0].detail

    def test_invalidate_after_emit_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/graph/digraph.py": """
                    class Graph:
                        def remove_edge(self, u, v):
                            self._adj[u].remove(v)
                            self._emit(DeltaOp(REMOVE_EDGE, u, v))
                            self._invalidate_caches()
                """
            },
            "R1",
        )
        assert len(report.new) == 1
        assert "mutator-late-invalidate:remove_edge" in report.new[0].detail

    def test_invalidate_before_emit_clean(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/graph/digraph.py": """
                    class Graph:
                        def add_edge(self, u, v):
                            self._invalidate_caches()
                            self._adj[u].append(v)
                            self._emit(DeltaOp(ADD_EDGE, u, v))
                """
            },
            "R1",
        )
        assert report.new == []

    def test_set_attrs_exempt_by_design(self, tmp_path):
        # SET_ATTRS is not structural: no invalidation required.
        report = check(
            tmp_path,
            {
                "src/repro/graph/digraph.py": """
                    class Graph:
                        def set_attrs(self, v, **attrs):
                            self._attrs[v].update(attrs)
                            self._emit(DeltaOp(SET_ATTRS, v, attrs))
                """
            },
            "R1",
        )
        assert report.new == []


# ----------------------------------------------------------------------
# R1 part B — graph.derived writers must use registered prefixes
# ----------------------------------------------------------------------


class TestR1DerivedWriters:
    def test_unregistered_key_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/index/invalidation.py": INVALIDATION_FIXTURE,
                "src/repro/index/rogue.py": """
                    def store(graph, value):
                        graph.derived["rogue-cache:main"] = value
                """,
            },
            "R1",
        )
        assert len(report.new) == 1
        assert "derived-key-unregistered:rogue-cache:main" in report.new[0].detail

    def test_unresolvable_key_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/index/invalidation.py": INVALIDATION_FIXTURE,
                "src/repro/index/dynamic.py": """
                    def store(graph, key, value):
                        graph.derived[key] = value
                """,
            },
            "R1",
        )
        assert len(report.new) == 1
        assert report.new[0].detail == "derived-key-unresolvable"

    def test_cross_module_prefix_constant_clean(self, tmp_path):
        # The key folds through an imported constant to a registered
        # prefix — exactly how descendants.py / csr.py build theirs.
        report = check(
            tmp_path,
            {
                "src/repro/index/invalidation.py": INVALIDATION_FIXTURE,
                "src/repro/index/descendants.py": """
                    from repro.index.invalidation import DESC_PREFIX

                    KEY = DESC_PREFIX + "main"

                    def store(graph, value):
                        graph.derived[KEY] = value
                """,
            },
            "R1",
        )
        assert report.new == []

    def test_setdefault_writes_are_checked_too(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/index/invalidation.py": INVALIDATION_FIXTURE,
                "src/repro/index/lazy.py": """
                    def store(graph):
                        return graph.derived.setdefault("oops:x", {})
                """,
            },
            "R1",
        )
        assert len(report.new) == 1
        assert "derived-key-unregistered:oops:x" in report.new[0].detail

    def test_overlay_key_without_registered_prefix_flagged(self, tmp_path):
        # A snapshot-patcher caching an overlay under an unregistered
        # prefix would be invisible to wholesale invalidation sweeps.
        report = check(
            tmp_path,
            {
                "src/repro/index/invalidation.py": INVALIDATION_FIXTURE,
                "src/repro/graph/patcher.py": """
                    def cache_overlay(graph, snap):
                        graph.derived["csr-overlay:graph"] = snap
                """,
            },
            "R1",
        )
        assert len(report.new) == 1
        assert (
            "derived-key-unregistered:csr-overlay:graph"
            in report.new[0].detail
        )

    def test_overlay_key_clean_once_prefix_registered(self, tmp_path):
        # Clean twin: the registry carries the overlay prefix and the
        # writer folds it through an imported constant, like csr.py.
        registry = """
            DESC_PREFIX = "descendant-index:"
            CSR_PREFIX = "csr-snapshot:"
            OVERLAY_PREFIX = "csr-overlay:"

            STRUCTURAL_KEY_PREFIXES = (DESC_PREFIX, CSR_PREFIX, OVERLAY_PREFIX)
        """
        report = check(
            tmp_path,
            {
                "src/repro/index/invalidation.py": registry,
                "src/repro/graph/patcher.py": """
                    from repro.index.invalidation import OVERLAY_PREFIX

                    OVERLAY_KEY = OVERLAY_PREFIX + "graph"

                    def cache_overlay(graph, snap):
                        graph.derived[OVERLAY_KEY] = snap
                """,
            },
            "R1",
        )
        assert report.new == []

    def test_real_registry_covers_overlay_prefix(self):
        # The shipped registry must keep the overlay prefix registered —
        # dropping it would orphan every cached patched snapshot.
        from repro.graph.csr import CSR_OVERLAY_KEY_PREFIX
        from repro.index.invalidation import STRUCTURAL_KEY_PREFIXES

        assert CSR_OVERLAY_KEY_PREFIX in STRUCTURAL_KEY_PREFIXES


# ----------------------------------------------------------------------
# R2 — legacy toggle kwargs must funnel through ExecutionConfig.adapt
# ----------------------------------------------------------------------


class TestR2ConfigDiscipline:
    def test_loose_toggle_kwargs_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/topk/wrapper.py": """
                    def top_k(pattern, graph, k, use_csr=None, rset_bitset=None):
                        effective = True if use_csr is None else use_csr
                        return run(pattern, graph, k, effective)
                """
            },
            "R2",
        )
        assert len(report.new) == 1
        assert "legacy-kwargs:top_k:rset_bitset,use_csr" in report.new[0].detail

    def test_adapt_funnel_clean(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/topk/wrapper.py": """
                    from repro.session.config import ExecutionConfig

                    def top_k(pattern, graph, k, use_csr=None):
                        cfg = ExecutionConfig.adapt(use_csr=use_csr)
                        return run(pattern, graph, k, cfg)
                """
            },
            "R2",
        )
        assert report.new == []

    def test_local_funnel_indirection_clean(self, tmp_path):
        # The api.py facade pattern: one module-local helper owns the
        # adapt() call; public wrappers route through it.
        report = check(
            tmp_path,
            {
                "src/repro/facade.py": """
                    from repro.session.config import ExecutionConfig

                    def _adapt(options):
                        return ExecutionConfig.adapt(**options)

                    def top_k(pattern, graph, k, use_csr=None, scc_incremental=None):
                        cfg = _adapt({"use_csr": use_csr,
                                      "scc_incremental": scc_incremental})
                        return run(pattern, graph, k, cfg)
                """
            },
            "R2",
        )
        assert report.new == []

    def test_bare_optimized_on_leaf_kernel_allowed(self, tmp_path):
        # ``optimized`` alone is the documented leaf-kernel arm selector.
        report = check(
            tmp_path,
            {
                "src/repro/simulation/kernel.py": """
                    def simulate(pattern, graph, optimized=True):
                        return _csr(pattern, graph) if optimized else _dict(pattern, graph)
                """
            },
            "R2",
        )
        assert report.new == []

    def test_optimized_next_to_config_param_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/topk/wrapper.py": """
                    def top_k(pattern, graph, k, config=None, optimized=None):
                        arm = config.optimized if config else bool(optimized)
                        return run(pattern, graph, k, arm)
                """
            },
            "R2",
        )
        assert len(report.new) == 1
        assert "legacy-kwargs:top_k:optimized" in report.new[0].detail

    def test_config_module_itself_exempt(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/session/config.py": """
                    class ExecutionConfig:
                        @classmethod
                        def adapt(cls, use_csr=None, rset_bitset=None):
                            return cls()
                """
            },
            "R2",
        )
        assert report.new == []


# ----------------------------------------------------------------------
# R3 — disabled observability must stay a strict no-op on hot paths
# ----------------------------------------------------------------------


class TestR3ObsNoOp:
    def test_chained_ambient_call_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/topk/hot.py": """
                    from repro.obs import current_tracer

                    def annotate(v):
                        current_tracer().event("visit", node=v)
                """
            },
            "R3",
        )
        assert len(report.new) == 1
        assert report.new[0].detail == "chained-ambient:current_tracer"

    def test_unguarded_collector_flagged_and_guard_accepted(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/session/metrics_use.py": """
                    from repro.obs import current_metrics

                    def bad(n):
                        registry = current_metrics()
                        registry.counter("repro_queries_total").inc(n)

                    def good(n):
                        registry = current_metrics()
                        if registry is not None:
                            registry.counter("repro_queries_total").inc(n)
                """
            },
            "R3",
        )
        assert [f.symbol for f in report.new] == ["bad"]
        assert report.new[0].detail.startswith("unguarded-collector:registry.")

    def test_unguarded_span_attr_flagged_and_guard_accepted(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/simulation/spanuse.py": """
                    from repro.obs import trace

                    def bad(rounds):
                        with trace("simulation.fixpoint") as span:
                            span.set_attr(rounds=rounds)

                    def good(rounds):
                        with trace("simulation.fixpoint") as span:
                            if span is not None:
                                span.set_attr(rounds=rounds)
                """
            },
            "R3",
        )
        assert [f.symbol for f in report.new] == ["bad"]
        assert report.new[0].detail == "unguarded-span:span.set_attr"

    def test_hook_inside_loop_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/topk/loopy.py": """
                    from repro.obs import trace

                    def run(batches):
                        for index, batch in enumerate(batches):
                            with trace("engine.batch", index=index):
                                batch.run()
                """
            },
            "R3",
        )
        assert len(report.new) == 1
        assert report.new[0].detail == "hook-in-loop:trace"

    def test_preresolved_guarded_tracer_in_loop_clean(self, tmp_path):
        # The engine.run() shape after the PR-7 fix.
        report = check(
            tmp_path,
            {
                "src/repro/topk/loopy.py": """
                    from repro.obs import current_tracer

                    def run(batches):
                        tracer = current_tracer()
                        for index, batch in enumerate(batches):
                            if tracer is not None:
                                with tracer.span("engine.batch", index=index):
                                    batch.run()
                            else:
                                batch.run()
                """
            },
            "R3",
        )
        assert report.new == []

    def test_cold_modules_out_of_scope(self, tmp_path):
        # Same pattern outside the hot-path packages: not R3's business.
        report = check(
            tmp_path,
            {
                "src/repro/viz/render.py": """
                    from repro.obs import trace

                    def render(frames):
                        for frame in frames:
                            with trace("viz.frame"):
                                frame.draw()
                """
            },
            "R3",
        )
        assert report.new == []


# ----------------------------------------------------------------------
# R4 — engine-private buffers stay inside repro/topk/
# ----------------------------------------------------------------------


class TestR4Encapsulation:
    def test_foreign_buffer_access_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/session/peek.py": """
                    def relevant_count(engine, pid):
                        return engine._g_card[engine._g_bits[pid]]
                """
            },
            "R4",
        )
        details = sorted(f.detail for f in report.new)
        assert details == ["private-buffer:_g_bits", "private-buffer:_g_card"]

    def test_own_self_attribute_of_same_name_clean(self, tmp_path):
        # The session cache legitimately owns its *own* _pair_csr store.
        report = check(
            tmp_path,
            {
                "src/repro/session/cachelike.py": """
                    class PairStore:
                        def __init__(self):
                            self._pair_csr = {}

                        def get(self, key):
                            return self._pair_csr.get(key)
                """
            },
            "R4",
        )
        assert report.new == []

    def test_engine_package_itself_exempt(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/topk/selection.py": """
                    def peek(engine, pid):
                        return engine._pending_bits[pid]
                """
            },
            "R4",
        )
        assert report.new == []


# ----------------------------------------------------------------------
# R5 — mutable defaults and frozen-dataclass mutation
# ----------------------------------------------------------------------

FROZEN_FIXTURE = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class Spec:
        k: int = 10
"""


class TestR5FrozenAndDefaults:
    def test_mutable_default_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/util.py": """
                    def collect(values, seen=[]):
                        seen.extend(values)
                        return seen
                """
            },
            "R5",
        )
        assert len(report.new) == 1
        assert report.new[0].detail == "mutable-default:collect:seen"

    def test_none_default_clean(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/util.py": """
                    def collect(values, seen=None):
                        seen = [] if seen is None else seen
                        seen.extend(values)
                        return seen
                """
            },
            "R5",
        )
        assert report.new == []

    def test_frozen_mutation_via_annotation_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/spec.py": FROZEN_FIXTURE,
                "src/repro/mutator.py": """
                    def widen(spec: Spec):
                        spec.k = spec.k * 2
                        return spec
                """,
            },
            "R5",
        )
        assert len(report.new) == 1
        assert report.new[0].detail == "frozen-mutation:Spec.k"

    def test_frozen_mutation_via_constructor_binding_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/spec.py": FROZEN_FIXTURE,
                "src/repro/builder.py": """
                    def build():
                        spec = Spec()
                        spec.k = 20
                        return spec
                """,
            },
            "R5",
        )
        assert len(report.new) == 1
        assert report.new[0].detail == "frozen-mutation:Spec.k"

    def test_dataclasses_replace_clean(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/spec.py": FROZEN_FIXTURE,
                "src/repro/builder.py": """
                    from dataclasses import replace

                    def widen(spec: Spec):
                        return replace(spec, k=spec.k * 2)
                """,
            },
            "R5",
        )
        assert report.new == []

    def test_setattr_escape_outside_owner_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/spec.py": FROZEN_FIXTURE,
                "src/repro/escape.py": """
                    def sneak(spec):
                        object.__setattr__(spec, "k", 99)
                """,
            },
            "R5",
        )
        assert len(report.new) == 1
        assert report.new[0].detail == "frozen-setattr-escape"

    def test_setattr_inside_own_frozen_class_clean(self, tmp_path):
        # __post_init__-style normalisation is the sanctioned use.
        report = check(
            tmp_path,
            {
                "src/repro/spec.py": """
                    from dataclasses import dataclass

                    @dataclass(frozen=True)
                    class Spec:
                        k: int = 10

                        def __post_init__(self):
                            object.__setattr__(self, "k", max(1, self.k))
                """
            },
            "R5",
        )
        assert report.new == []


# ----------------------------------------------------------------------
# R6 — typed-core annotation coverage
# ----------------------------------------------------------------------


class TestR6TypedCore:
    def test_unannotated_core_function_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/session/helper.py": """
                    def merge(primary, extra=None, **options):
                        return {**primary, **(extra or {}), **options}
                """
            },
            "R6",
        )
        assert len(report.new) == 1
        assert (
            report.new[0].detail
            == "missing-annotations:merge:primary,extra,**options,return"
        )

    def test_fully_annotated_core_function_clean(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/session/helper.py": """
                    from typing import Any

                    def merge(
                        primary: dict[str, Any],
                        extra: dict[str, Any] | None = None,
                        **options: Any,
                    ) -> dict[str, Any]:
                        return {**primary, **(extra or {}), **options}
                """
            },
            "R6",
        )
        assert report.new == []

    def test_self_and_cls_exempt(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/obs/thing.py": """
                    class Thing:
                        def size(self) -> int:
                            return 0

                        @classmethod
                        def empty(cls) -> "Thing":
                            return cls()
                """
            },
            "R6",
        )
        assert report.new == []

    def test_modules_outside_typed_core_exempt(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/workloads/gen.py": """
                    def generate(seed, size):
                        return [seed] * size
                """
            },
            "R6",
        )
        assert report.new == []

# ----------------------------------------------------------------------
# R7 — pickle/spawn safety
# ----------------------------------------------------------------------


class TestR7TransientSlots:
    def test_risky_slot_missing_from_transient_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/graph/csr.py": """
                    class CSRSnapshot:
                        __slots__ = ("indptr", "_neigh_cache", "_shard_lock")
                        _TRANSIENT_SLOTS = ("_neigh_cache",)

                        def __getstate__(self):
                            return {
                                slot: getattr(self, slot)
                                for slot in self.__slots__
                                if slot not in self._TRANSIENT_SLOTS
                            }
                """
            },
            "R7",
        )
        assert len(report.new) == 1
        assert (
            report.new[0].detail
            == "pickled-risky-slot:CSRSnapshot._shard_lock"
        )

    def test_complete_transient_list_clean(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/graph/csr.py": """
                    class CSRSnapshot:
                        __slots__ = ("indptr", "_neigh_cache", "_shard_lock")
                        _TRANSIENT_SLOTS = ("_neigh_cache", "_shard_lock")

                        def __getstate__(self):
                            return {
                                slot: getattr(self, slot)
                                for slot in self.__slots__
                                if slot not in self._TRANSIENT_SLOTS
                            }
                """
            },
            "R7",
        )
        assert report.new == []

    def test_transient_resolved_through_base_concatenation(self, tmp_path):
        # PatchedCSRSnapshot inherits the transient list and extends it:
        # the analyzer must fold Base._TRANSIENT_SLOTS + (...) instead of
        # flagging the subclass's own risky slot.
        report = check(
            tmp_path,
            {
                "src/repro/graph/csr.py": """
                    class CSRSnapshot:
                        __slots__ = ("indptr", "_shard_lock")
                        _TRANSIENT_SLOTS = ("_shard_lock",)

                        def __getstate__(self):
                            return {}


                    class PatchedCSRSnapshot(CSRSnapshot):
                        __slots__ = ("_base", "_overlay_cache")
                        _TRANSIENT_SLOTS = CSRSnapshot._TRANSIENT_SLOTS + (
                            "_overlay_cache",
                        )
                """
            },
            "R7",
        )
        assert report.new == []

    def test_inherited_getstate_still_checks_subclass_slots(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/graph/csr.py": """
                    class CSRSnapshot:
                        __slots__ = ("indptr",)
                        _TRANSIENT_SLOTS = ()

                        def __getstate__(self):
                            return {}


                    class PatchedCSRSnapshot(CSRSnapshot):
                        __slots__ = ("_overlay_cache",)
                """
            },
            "R7",
        )
        assert len(report.new) == 1
        assert "_overlay_cache" in report.new[0].detail


class TestR7DictState:
    def test_undropped_lock_attr_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/graph/digraph.py": """
                    import threading

                    class Graph:
                        def __init__(self):
                            self._adj = {}
                            self._mutex = threading.Lock()

                        def __getstate__(self):
                            return dict(self.__dict__)
                """
            },
            "R7",
        )
        assert len(report.new) == 1
        assert report.new[0].detail == "pickled-risky-attr:Graph._mutex"

    def test_getstate_popping_the_attr_clean(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/graph/digraph.py": """
                    import threading

                    class Graph:
                        def __init__(self):
                            self._adj = {}
                            self._mutex = threading.Lock()

                        def __getstate__(self):
                            state = dict(self.__dict__)
                            state.pop("_mutex")
                            return state
                """
            },
            "R7",
        )
        assert report.new == []

    def test_class_without_getstate_exempt(self, tmp_path):
        # Never shipped by value: holding a lock is fine.
        report = check(
            tmp_path,
            {
                "src/repro/graph/digraph.py": """
                    import threading

                    class Graph:
                        def __init__(self):
                            self._mutex = threading.Lock()
                """
            },
            "R7",
        )
        assert report.new == []


class TestR7PoolPayloads:
    def test_lambda_submitted_to_pool_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/parallel/tasks.py": """
                    def dispatch(pool, items):
                        return pool.submit(lambda: len(items))
                """
            },
            "R7",
        )
        assert len(report.new) == 1
        assert report.new[0].detail == "lambda-to-pool:submit"

    def test_local_function_mapped_over_pool_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/parallel/tasks.py": """
                    def dispatch(executor, items):
                        def work(item):
                            return item * 2

                        return list(executor.map(work, items))
                """
            },
            "R7",
        )
        assert len(report.new) == 1
        assert report.new[0].detail == "local-def-to-pool:work"

    def test_module_level_payload_clean(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/parallel/tasks.py": """
                    def work(item):
                        return item * 2


                    def dispatch(pool, items):
                        return list(pool.map(work, items))
                """
            },
            "R7",
        )
        assert report.new == []

    def test_nonmodule_initializer_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/parallel/tasks.py": """
                    from concurrent.futures import ProcessPoolExecutor

                    def start(payload):
                        def seed():
                            return payload

                        return ProcessPoolExecutor(max_workers=2, initializer=seed)
                """
            },
            "R7",
        )
        assert len(report.new) == 1
        assert report.new[0].detail == "nonmodule-initializer"


# ----------------------------------------------------------------------
# R8 — lock discipline
# ----------------------------------------------------------------------


class TestR8LockDiscipline:
    def test_unguarded_registry_mutation_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/parallel/pools.py": """
                    import threading

                    _POOLS = {}
                    _POOLS_LOCK = threading.Lock()

                    def get_pool(workers):
                        with _POOLS_LOCK:
                            pool = _POOLS.get(workers)
                            if pool is None:
                                pool = object()
                                _POOLS[workers] = pool
                        return pool

                    def drop_pool(workers):
                        _POOLS.pop(workers, None)
                """
            },
            "R8",
        )
        assert len(report.new) == 1
        assert report.new[0].detail == "unguarded-mutation:global:_POOLS"

    def test_consistently_guarded_registry_clean(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/parallel/pools.py": """
                    import threading

                    _POOLS = {}
                    _POOLS_LOCK = threading.Lock()

                    def get_pool(workers):
                        with _POOLS_LOCK:
                            pool = _POOLS.get(workers)
                            if pool is None:
                                pool = object()
                                _POOLS[workers] = pool
                        return pool

                    def drop_pool(workers):
                        with _POOLS_LOCK:
                            _POOLS.pop(workers, None)
                """
            },
            "R8",
        )
        assert report.new == []

    def test_unguarded_attr_mutation_next_to_guarded_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/obs/registry.py": """
                    import threading

                    class Registry:
                        def __init__(self):
                            self._series = {}
                            self._lock = threading.Lock()

                        def observe(self, name, value):
                            with self._lock:
                                self._series.setdefault(name, []).append(value)

                        def reset(self, name):
                            self._series[name] = []
                """
            },
            "R8",
        )
        assert any(
            finding.detail == "unguarded-mutation:attr:_series"
            and finding.symbol == "Registry.reset"
            for finding in report.new
        )

    def test_locked_suffix_helper_is_callee_guarded(self, tmp_path):
        # *_locked names promise the caller holds the lock: their
        # mutations count as guarded, and calling them under the lock
        # keeps the whole module consistent.
        report = check(
            tmp_path,
            {
                "src/repro/session/pool.py": """
                    import threading

                    class Session:
                        def __init__(self):
                            self._pool = None
                            self._lock = threading.Lock()

                        def drop(self):
                            with self._lock:
                                self._drop_locked()

                        def _drop_locked(self):
                            self._pool = None

                        def replace(self, pool):
                            with self._lock:
                                self._pool = pool
                """
            },
            "R8",
        )
        assert report.new == []

    def test_never_guarded_attr_not_flagged(self, tmp_path):
        # Lockset-lite: an attribute nobody guards carries no evidence
        # of a locking convention, so nothing fires.
        report = check(
            tmp_path,
            {
                "src/repro/session/notes.py": """
                    class Notes:
                        def __init__(self):
                            self._entries = []

                        def add(self, entry):
                            self._entries.append(entry)
                """
            },
            "R8",
        )
        assert report.new == []

    def test_outside_concurrency_packages_exempt(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/workloads/state.py": """
                    import threading

                    _STATE = {}
                    _STATE_LOCK = threading.Lock()

                    def set_guarded(key, value):
                        with _STATE_LOCK:
                            _STATE[key] = value

                    def set_unguarded(key, value):
                        _STATE[key] = value
                """
            },
            "R8",
        )
        assert report.new == []


# ----------------------------------------------------------------------
# R9 — token-key soundness
# ----------------------------------------------------------------------


class TestR9TokenKeys:
    def test_raw_snapshot_in_key_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/session/cache.py": """
                    class SessionCache:
                        def bucket(self, snapshot, label):
                            key = ("bucket", snapshot, label)
                            return self._store.get(key)
                """
            },
            "R9",
        )
        assert len(report.new) == 1
        assert report.new[0].detail == "tokenless-snapshot-key:snapshot"

    def test_identityish_wrapper_still_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/session/cache.py": """
                    class SessionCache:
                        def bucket(self, snapshot, label):
                            key = ("bucket", id(snapshot), label)
                            return self._store.get(key)
                """
            },
            "R9",
        )
        assert len(report.new) == 1
        assert report.new[0].detail == "tokenless-snapshot-key:snapshot"

    def test_bucket_token_key_clean(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/session/cache.py": """
                    class SessionCache:
                        def bucket(self, snapshot, label):
                            key = ("bucket", snapshot.bucket_token(label), label)
                            return self._store.get(key)
                """
            },
            "R9",
        )
        assert report.new == []

    def test_self_key_inside_snapshot_class_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/graph/csr.py": """
                    class CSRSnapshot:
                        def _runner_key(self, num_shards):
                            return ("runner", self, num_shards)
                """
            },
            "R9",
        )
        assert len(report.new) == 1
        assert report.new[0].detail == "tokenless-snapshot-key:self"

    def test_generation_counter_key_clean(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/session/cache.py": """
                    class SessionCache:
                        def artifact(self, snapshot, name):
                            key = (name, snapshot.generation)
                            return self._store.get(key)
                """
            },
            "R9",
        )
        assert report.new == []

    def test_non_key_tuple_with_snapshot_clean(self, tmp_path):
        # A plain value tuple (not a key context) may carry the
        # snapshot freely.
        report = check(
            tmp_path,
            {
                "src/repro/session/cache.py": """
                    class SessionCache:
                        def pair(self, snapshot, label):
                            return (snapshot, label)
                """
            },
            "R9",
        )
        assert report.new == []

    def test_outside_token_key_modules_exempt(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/workloads/memo.py": """
                    def memo_key(snapshot, label):
                        key = ("memo", snapshot, label)
                        return key
                """
            },
            "R9",
        )
        assert report.new == []


# ----------------------------------------------------------------------
# R10 — toggle-oracle parity
# ----------------------------------------------------------------------

R10_CONFIG = """
    from dataclasses import dataclass


    @dataclass(frozen=True)
    class ExecutionConfig:
        use_fast: bool = True
"""

R10_ENGINE_BRANCHING = """
    def run(graph, config):
        if config.use_fast:
            return fast(graph)
        return reference(graph)
"""

R10_TEST_SUITE = """
    def test_use_fast_matches_reference():
        assert run(g, cfg(use_fast=True)) == run(g, cfg(use_fast=False))
"""


class TestR10ToggleParity:
    def test_toggle_without_branch_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/session/config.py": R10_CONFIG,
                "src/repro/topk/engine.py": """
                    def run(graph, config):
                        return reference(graph)
                """,
                "tests/test_engine.py": R10_TEST_SUITE,
            },
            "R10",
        )
        assert [finding.detail for finding in report.new] == [
            "toggle-without-branch:use_fast"
        ]

    def test_toggle_without_test_flagged(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/session/config.py": R10_CONFIG,
                "src/repro/topk/engine.py": R10_ENGINE_BRANCHING,
                "tests/test_engine.py": """
                    def test_something_else():
                        assert True
                """,
            },
            "R10",
        )
        assert [finding.detail for finding in report.new] == [
            "toggle-without-test:use_fast"
        ]

    def test_branched_and_tested_toggle_clean(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/session/config.py": R10_CONFIG,
                "src/repro/topk/engine.py": R10_ENGINE_BRANCHING,
                "tests/test_engine.py": R10_TEST_SUITE,
            },
            "R10",
        )
        assert report.new == []

    def test_kwarg_alias_hop_counts_as_branch(self, tmp_path):
        # sim_shards never appears by name in a boolean context: it is
        # renamed through `shards=config.sim_shards` into the kernel's
        # `if shards > 1` guard.  The one-hop alias must satisfy (a).
        report = check(
            tmp_path,
            {
                "src/repro/session/config.py": """
                    from dataclasses import dataclass


                    @dataclass(frozen=True)
                    class ExecutionConfig:
                        sim_shards: int = 0
                """,
                "src/repro/session/match.py": """
                    def dispatch(graph, config):
                        return kernel(graph, shards=config.sim_shards)
                """,
                "src/repro/simulation/kernel.py": """
                    def kernel(graph, shards=0):
                        if shards > 1:
                            return sharded(graph, shards)
                        return serial(graph)
                """,
                "tests/test_kernel.py": """
                    def test_sim_shards_matches_serial():
                        cfg = ExecutionConfig(sim_shards=2)
                        assert dispatch(g, cfg) == kernel(g)
                """,
            },
            "R10",
        )
        assert report.new == []

    def test_defaulting_branch_in_config_does_not_count(self, tmp_path):
        # resolved()'s own defaulting logic branches on every field; it
        # must not satisfy the serial-arm requirement.
        report = check(
            tmp_path,
            {
                "src/repro/session/config.py": """
                    from dataclasses import dataclass


                    @dataclass(frozen=True)
                    class ExecutionConfig:
                        use_fast: bool = True

                        def resolved(self):
                            if self.use_fast:
                                return self
                            return self
                """,
                "tests/test_config.py": """
                    def test_use_fast():
                        assert ExecutionConfig(use_fast=True)
                """,
            },
            "R10",
        )
        assert [finding.detail for finding in report.new] == [
            "toggle-without-branch:use_fast"
        ]

    def test_non_toggle_fields_exempt(self, tmp_path):
        report = check(
            tmp_path,
            {
                "src/repro/session/config.py": """
                    from dataclasses import dataclass


                    @dataclass(frozen=True)
                    class ExecutionConfig:
                        batch_label: str = "default"
                """,
            },
            "R10",
        )
        assert report.new == []
