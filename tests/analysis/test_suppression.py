"""``# repro: noqa`` handling: scoped, bare, multi-rule, wrong-rule."""

from __future__ import annotations

from _fixtures import check

def _source(comment: str = "") -> str:
    suffix = f"  {comment}" if comment else ""
    return f"def collect(values, seen=[]):{suffix}\n    return seen\n"


class TestSuppressionComments:
    def test_scoped_noqa_suppresses_the_listed_rule(self, tmp_path):
        report = check(
            tmp_path,
            {"src/repro/util.py": _source("# repro: noqa[R5] -- shared sentinel")},
            "R5",
        )
        assert report.new == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].rule == "R5"

    def test_bare_noqa_suppresses_every_rule(self, tmp_path):
        report = check(
            tmp_path,
            {"src/repro/util.py": _source("# repro: noqa")},
            "R5",
        )
        assert report.new == []
        assert len(report.suppressed) == 1

    def test_multi_rule_list_matches_any_listed(self, tmp_path):
        report = check(
            tmp_path,
            {"src/repro/util.py": _source("# repro: noqa[R1, R5]")},
            "R5",
        )
        assert report.new == []
        assert len(report.suppressed) == 1

    def test_wrong_rule_listed_does_not_suppress(self, tmp_path):
        report = check(
            tmp_path,
            {"src/repro/util.py": _source("# repro: noqa[R1]")},
            "R5",
        )
        assert len(report.new) == 1
        assert report.suppressed == []

    def test_rule_ids_are_case_insensitive(self, tmp_path):
        report = check(
            tmp_path,
            {"src/repro/util.py": _source("# repro: noqa[r5]")},
            "R5",
        )
        assert report.new == []
        assert len(report.suppressed) == 1

    def test_noqa_on_a_different_line_does_not_leak(self, tmp_path):
        source = (
            "# repro: noqa[R5]\n"
            "def collect(values, seen=[]):\n"
            "    return seen\n"
        )
        report = check(tmp_path, {"src/repro/util.py": source}, "R5")
        assert len(report.new) == 1

    def test_plain_flake8_noqa_is_ignored(self, tmp_path):
        # Only the namespaced form counts; a generic `# noqa` targets
        # other tools and must not silence project invariants.
        report = check(
            tmp_path,
            {"src/repro/util.py": _source("# noqa")},
            "R5",
        )
        assert len(report.new) == 1

    def test_suppressed_findings_never_fail_the_report(self, tmp_path):
        report = check(
            tmp_path,
            {"src/repro/util.py": _source("# repro: noqa[R5]")},
            "R5",
        )
        assert report.ok
