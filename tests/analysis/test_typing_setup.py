"""The gradual-typing gate: py.typed ships, mypy-strict core is clean.

mypy is not part of the runtime container; the mypy test skips when it
is absent and runs for real in CI (the `analysis` job installs it).
The R6 rule keeps annotation *coverage* enforced either way.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_py_typed_marker_ships_with_the_package():
    assert (Path(repro.__file__).parent / "py.typed").is_file()


def test_py_typed_is_declared_as_package_data():
    setup_cfg = (REPO_ROOT / "setup.cfg").read_text()
    assert "py.typed" in setup_cfg


def test_mypy_config_covers_the_typed_core():
    config = (REPO_ROOT / "mypy.ini").read_text()
    for section in (
        "[mypy-repro.session.*]",
        "[mypy-repro.obs.*]",
        "[mypy-repro.index.*]",
        "[mypy-repro.graph.delta]",
        "[mypy-repro.api]",
        "[mypy-repro.analysis.*]",
    ):
        assert section in config, f"mypy.ini is missing {section}"


def test_mypy_strict_core_is_clean():
    pytest.importorskip("mypy", reason="mypy not installed (CI-only check)")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
