"""Pickle round-trips for everything the serving pool ships.

Workers receive ``(Graph, ExecutionConfig)`` once at initialisation and
``QuerySpec`` lists per dispatch; the kernel's process backend ships
``CSRSnapshot``.  Each must survive a round-trip with its semantic
payload intact while process-local wiring (listeners, derived caches,
scalar-mirror/shard caches) is deliberately dropped and rebuilt lazily.
"""

import pickle

import pytest

from repro.graph import csr
from repro.session import ExecutionConfig, QuerySpec
from repro.session.parallel import spec_is_poolable

from tests.conftest import make_random_graph, make_random_pattern


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def test_graph_roundtrip_preserves_topology_and_drops_wiring():
    graph = make_random_graph(3, num_nodes=12, num_edges=22)
    graph.set_attrs(0, weight=7)
    graph.remove_node(5)
    graph.snapshot() if csr.available() else None  # populate derived
    graph.add_listener(lambda op: None)
    copy = roundtrip(graph)
    assert copy.num_nodes == graph.num_nodes
    assert copy.num_edges == graph.num_edges
    assert sorted(copy.edges()) == sorted(graph.edges())
    assert [copy.label(v) for v in copy.nodes()] == [
        graph.label(v) for v in graph.nodes()
    ]
    assert copy.attr(0, "weight") == 7
    assert copy._listeners == [] and copy._invalidators == []
    assert copy.derived == {} and copy.extensions == {}


@pytest.mark.skipif(not csr.available(), reason="requires numpy")
def test_csr_snapshot_roundtrip_preserves_arrays_and_drops_caches():
    import numpy as np

    graph = make_random_graph(7, num_nodes=15, num_edges=30)
    snap = graph.snapshot()
    snap.out_csr_lists()  # populate a scalar-mirror cache
    snap.shard_bounds(3)  # populate the shard cache
    copy = roundtrip(snap)
    for name in (
        "out_offsets", "out_targets", "in_offsets", "in_sources",
        "label_ids", "live_mask", "label_offsets", "label_nodes",
    ):
        np.testing.assert_array_equal(getattr(copy, name), getattr(snap, name))
    assert copy.num_nodes == snap.num_nodes
    assert copy.num_edges == snap.num_edges
    assert copy._shard_cache == {} and copy._out_lists is None
    # And the copy computes identical counting scans.
    membership = np.zeros(snap.num_nodes, dtype=np.uint8)
    membership[:: 2] = 1
    np.testing.assert_array_equal(
        copy.out_counts(membership), snap.out_counts(membership)
    )


@pytest.mark.skipif(not csr.available(), reason="requires numpy")
def test_patched_snapshot_roundtrip_preserves_overlay_reads():
    """An overlay-form snapshot pickles like a flat one: every read the
    copy serves matches the patched original, and process-local caches
    (shard cache, list mirrors, token) are rebuilt fresh."""
    import numpy as np

    graph = make_random_graph(11, num_nodes=15, num_edges=30)
    base = csr.CSRSnapshot.build(graph)
    ops = []
    unsubscribe = graph.add_listener(ops.append)
    edges = list(graph.edges())
    graph.remove_edge(*edges[0])
    graph.add_edge(*edges[0])  # re-add: segment ordering must survive
    graph.add_node("A")
    graph.remove_node(edges[1][0])
    unsubscribe()
    patched = csr.PatchedCSRSnapshot.patch(base, ops, graph)
    patched.out_csr_lists()
    patched.shard_bounds(3)
    copy = roundtrip(patched)
    assert isinstance(copy, csr.PatchedCSRSnapshot)
    assert copy.num_nodes == patched.num_nodes
    assert copy.num_edges == patched.num_edges
    assert copy.num_live == patched.num_live
    np.testing.assert_array_equal(copy.live_mask, patched.live_mask)
    assert copy._shard_cache == {} and copy._out_lists is None
    for node in range(patched.num_nodes):
        np.testing.assert_array_equal(
            copy.successors(node), patched.successors(node)
        )
        np.testing.assert_array_equal(
            copy.predecessors(node), patched.predecessors(node)
        )
    for label_id in range(patched.num_labels):
        np.testing.assert_array_equal(
            copy.nodes_with_label_id(label_id),
            patched.nodes_with_label_id(label_id),
        )
    membership = np.zeros(patched.num_nodes, dtype=np.uint8)
    membership[::2] = 1
    np.testing.assert_array_equal(
        copy.out_counts(membership), patched.out_counts(membership)
    )
    np.testing.assert_array_equal(
        copy.in_counts(membership), patched.in_counts(membership)
    )
    # Tokens are transient per-process wiring: minted fresh on load.
    assert copy.token != patched.token


def test_execution_config_roundtrip():
    cfg = ExecutionConfig(
        use_csr=True, scc_incremental=False, bound_strategy="hop",
        batch_size=4, seed=9, workers=3, sim_shards=2,
        shard_backend="process", metrics=True,
    )
    assert roundtrip(cfg) == cfg
    assert roundtrip(cfg.resolved()) == cfg.resolved()


def test_query_spec_roundtrip():
    pattern = make_random_pattern(4, num_nodes=3, extra_edges=1, cyclic=False)
    spec = QuerySpec(
        pattern, k=4, mode="diversified", lam=0.25, method="approx",
        config=ExecutionConfig(workers=2),
    )
    assert spec_is_poolable(QuerySpec(pattern, k=4))
    copy = roundtrip(spec)
    assert copy.k == spec.k and copy.mode == spec.mode
    assert copy.lam == spec.lam and copy.method == spec.method
    assert copy.config == spec.config
    assert copy.pattern.shape == spec.pattern.shape
    assert list(copy.pattern.edges()) == list(spec.pattern.edges())


def test_unpicklable_spec_is_not_poolable():
    pattern = make_random_pattern(8, num_nodes=3, extra_edges=1, cyclic=True)
    spec = QuerySpec(pattern, k=2, relevance_fn=lambda ctx, v: 1.0)
    assert not spec_is_poolable(spec)
