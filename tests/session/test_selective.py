"""Label-selective invalidation: selective refresh ≡ wholesale refresh.

Under ``ExecutionConfig(snapshot_patching=True)`` a session's refresh
drops only the artifacts whose label signature intersects the
accumulated delta, and small deltas patch the CSR snapshot instead of
recompiling it.  Neither may ever change an answer: across
hypothesis-generated mutation interleavings, a selectively-refreshing
session must return exactly what a wholesale-refreshing session (the
oracle, default config) returns on an identical twin graph.  The
survival property itself — artifacts of patterns whose labels the
write stream missed outlive the refresh — is pinned separately, as is
the wholesale fallback when the pending-op log overflows and the
bucket-token regression (a patched snapshot must never serve a stale
pre-patch bucket).
"""

import pickle
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import csr
from repro.patterns.pattern import Pattern
from repro.session import ExecutionConfig, MatchSession
from repro.session.cache import PENDING_OPS_CAP, SessionCache

from tests.session.test_batch_equivalence import assert_same, mixed_batch
from tests.test_csr_equivalence import rich_random_graph

SETTINGS = settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

SELECTIVE = ExecutionConfig(snapshot_patching=True)


def twin_graphs(seed: int):
    graph = rich_random_graph(seed)
    return graph, pickle.loads(pickle.dumps(graph))


def mutate_both(g1, g2, rng: random.Random, steps: int) -> None:
    """Apply one random structural+attribute stream to both twins."""
    for _ in range(steps):
        roll = rng.random()
        edges = list(g1.edges())
        live = [v for v in g1.nodes() if g1.is_live(v)]
        if roll < 0.35 and edges:
            src, dst = rng.choice(edges)
            g1.remove_edge(src, dst)
            g2.remove_edge(src, dst)
        elif roll < 0.70 and len(live) >= 2:
            src, dst = rng.choice(live), rng.choice(live)
            if not g1.has_edge(src, dst):
                g1.add_edge(src, dst)
                g2.add_edge(src, dst)
        elif roll < 0.80:
            label = rng.choice("ABC")
            g1.add_node(label)
            g2.add_node(label)
        elif roll < 0.90 and len(live) > 4:
            node = rng.choice(live)
            g1.remove_node(node)
            g2.remove_node(node)
        elif live:
            node = rng.choice(live)
            g1.set_attrs(node, w=rng.randrange(10))
            g2.set_attrs(node, w=rng.randrange(10))


@given(seed=st.integers(0, 10_000), rounds=st.integers(1, 3))
@SETTINGS
def test_selective_refresh_equals_wholesale_across_interleavings(seed, rounds):
    g_sel, g_who = twin_graphs(seed)
    specs = mixed_batch(seed)
    with MatchSession(
        g_sel, config=SELECTIVE, on_mutation="refresh"
    ) as selective, MatchSession(g_who, on_mutation="refresh") as wholesale:
        for round_ in range(rounds):
            got = selective.run_batch(specs)
            want = wholesale.run_batch(specs)
            for a, b in zip(got, want):
                assert_same(a, b)
            mutate_both(
                g_sel, g_who, random.Random(seed * 97 + round_), steps=5
            )
        # Final post-mutation round.
        for a, b in zip(selective.run_batch(specs), wholesale.run_batch(specs)):
            assert_same(a, b)
        assert selective.cache.stats.selective_refreshes >= 1


def _two_label_patterns():
    """Two patterns over disjoint label sets (AB vs CD)."""
    p_ab = Pattern()
    a = p_ab.add_node("A")
    b = p_ab.add_node("B")
    p_ab.add_edge(a, b)
    p_ab.set_output(a)
    p_cd = Pattern()
    c = p_cd.add_node("C")
    d = p_cd.add_node("D")
    p_cd.add_edge(c, d)
    p_cd.set_output(c)
    return p_ab, p_cd


def _graph_with_labels(seed: int):
    rng = random.Random(seed)
    from repro.graph.digraph import Graph

    graph = Graph()
    for _ in range(40):
        graph.add_node(rng.choice("ABCD"))
    added = 0
    while added < 120:
        src, dst = rng.randrange(40), rng.randrange(40)
        if not graph.has_edge(src, dst):
            graph.add_edge(src, dst)
            added += 1
    return graph


def test_untouched_pattern_artifacts_survive_refresh():
    """A delta on labels {C, D} keeps the AB pattern's entire pipeline."""
    graph = _graph_with_labels(5)
    p_ab, p_cd = _two_label_patterns()
    with MatchSession(
        graph, config=SELECTIVE, on_mutation="refresh"
    ) as session:
        first_ab = session.top_k(p_ab, k=5)
        session.top_k(p_cd, k=5)
        stats = session.cache.stats
        builds_before = (
            stats.candidates_builds,
            stats.sim_builds,
            stats.bounds_builds,
        )
        # Mutate only C/D-labelled structure.
        c_nodes = [v for v in graph.nodes() if graph.label(v) == "C"]
        d_nodes = [v for v in graph.nodes() if graph.label(v) == "D"]
        src, dst = c_nodes[0], d_nodes[0]
        if graph.has_edge(src, dst):
            graph.remove_edge(src, dst)
        else:
            graph.add_edge(src, dst)
        session.refresh()
        assert stats.selective_refreshes == 1
        assert stats.artifacts_survived > 0
        again_ab = session.top_k(p_ab, k=5)
        # No rebuilds for the AB pattern: candidates, sim and bounds all hit.
        assert (
            stats.candidates_builds,
            stats.sim_builds,
            stats.bounds_builds,
        ) == builds_before
        assert_same(again_ab, first_ab)
        # The CD pattern's artifacts were dropped and rebuild on demand.
        cd_sim_builds = stats.sim_builds
        session.top_k(p_cd, k=5)
        assert stats.sim_builds == cd_sim_builds + 1


def test_stored_results_survive_unrelated_deltas():
    graph = _graph_with_labels(6)
    p_ab, p_cd = _two_label_patterns()
    with MatchSession(
        graph, config=SELECTIVE, on_mutation="refresh"
    ) as session:
        session.top_k(p_ab, k=4)
        c_nodes = [v for v in graph.nodes() if graph.label(v) == "C"]
        graph.set_attrs(c_nodes[0], w=3)  # attrs op on an unrelated label
        session.refresh()
        reused_before = session.stats.results_reused
        session.top_k(p_ab, k=4)
        assert session.stats.results_reused == reused_before + 1


def test_pending_overflow_falls_back_to_wholesale():
    graph = _graph_with_labels(7)
    cache = SessionCache(graph)
    cache.selective = True
    live = [v for v in graph.nodes() if graph.is_live(v)]
    for i in range(PENDING_OPS_CAP + 5):
        graph.set_attrs(live[i % len(live)], tick=i)
    assert cache.pending_ops == []  # overflowed and dropped
    assert cache.refresh() == "wholesale"
    assert cache.stats.wholesale_refreshes == 1
    # The log re-arms after the refresh.
    graph.set_attrs(live[0], tick=-1)
    assert len(cache.pending_ops) == 1
    assert cache.refresh() == "selective"
    cache.close()


def test_selective_cache_off_by_default():
    graph = _graph_with_labels(8)
    with MatchSession(graph, on_mutation="refresh") as session:
        assert session.cache.selective is False
        session.top_k(_two_label_patterns()[0], k=3)
        graph.add_node("A")
        session.refresh()
        assert session.cache.stats.wholesale_refreshes == 1
        assert session.cache.stats.selective_refreshes == 0
    # And no patcher was attached to the graph.
    assert csr.patcher_of(graph) is None


@pytest.mark.skipif(not csr.available(), reason="requires numpy")
def test_patched_snapshot_cannot_serve_stale_buckets():
    """Bucket-token regression: after a patch touches label A, the A
    bucket must be rebuilt from the patched snapshot, not served from
    the pre-patch entry."""
    graph = _graph_with_labels(9)
    p_ab, _ = _two_label_patterns()
    with MatchSession(
        graph, config=SELECTIVE, on_mutation="refresh"
    ) as session:
        session.top_k(p_ab, k=5)
        new_a = graph.add_node("A")
        b_nodes = [v for v in graph.nodes() if graph.label(v) == "B"]
        graph.add_edge(new_a, b_nodes[0])
        result = session.top_k(p_ab, k=len(b_nodes) + 10)
        # The fresh A-node reaches a B-node, so it must be a candidate:
        # compare against an independent session on the same graph.
        with MatchSession(graph) as oracle:
            assert_same(result, oracle.top_k(p_ab, k=len(b_nodes) + 10))
        snap = graph.snapshot()
        label_id = graph.labels.get("A")
        assert new_a in snap.label_bucket_list(label_id)


def test_refresh_modes_reach_metrics():
    from repro.obs import MetricsRegistry, use_metrics

    graph = _graph_with_labels(10)
    registry = MetricsRegistry()
    with use_metrics(registry):
        cache = SessionCache(graph)
        cache.selective = True
        graph.add_node("A")
        cache.refresh()
        cache.selective = False
        graph.add_node("B")
        cache.refresh()
        cache.close()
    counter = registry.get("repro_session_refresh_total")
    assert counter is not None
    modes = {labels["mode"]: value for labels, value in counter.samples()}
    assert modes["selective"] == 1.0
    # close() routes wholesale too, so >= the one explicit call.
    assert modes["wholesale"] >= 1.0
