"""ExecutionConfig: the single home of the toggle-default chain."""

import dataclasses

import pytest

from repro.errors import MatchingError
from repro.graph import csr
from repro.session import ExecutionConfig


class TestDefaulting:
    def test_all_defaults_resolve_to_fast_paths(self):
        cfg = ExecutionConfig().resolved()
        expected = csr.available()
        assert cfg.use_csr is expected
        assert cfg.scc_incremental is expected
        assert cfg.rset_bitset is expected

    def test_optimized_false_resolves_reference_arm(self):
        cfg = ExecutionConfig(optimized=False).resolved()
        assert cfg.use_csr is False
        assert cfg.scc_incremental is False
        assert cfg.rset_bitset is False

    def test_toggles_follow_use_csr_not_optimized(self):
        cfg = ExecutionConfig(optimized=False, use_csr=True).resolved()
        expected = csr.available()
        assert cfg.use_csr is expected
        assert cfg.scc_incremental is expected
        assert cfg.rset_bitset is expected

    def test_explicit_toggle_overrides_chain(self):
        cfg = ExecutionConfig(use_csr=False, rset_bitset=True).resolved()
        assert cfg.use_csr is False
        assert cfg.scc_incremental is False
        assert cfg.rset_bitset is True

    def test_resolved_is_idempotent(self):
        cfg = ExecutionConfig(optimized=False, rset_bitset=True).resolved()
        assert cfg.resolved() is cfg

    def test_resolution_preserves_non_toggle_fields(self):
        cfg = ExecutionConfig(
            bound_strategy="hop", batch_size=7, presimulate=False, seed=3
        ).resolved()
        assert cfg.bound_strategy == "hop"
        assert cfg.batch_size == 7
        assert cfg.presimulate is False
        assert cfg.seed == 3


class TestValidation:
    def test_unknown_bound_strategy_rejected(self):
        with pytest.raises(MatchingError):
            ExecutionConfig(bound_strategy="bogus")

    def test_nonpositive_batch_size_rejected(self):
        with pytest.raises(MatchingError):
            ExecutionConfig(batch_size=0)

    def test_frozen(self):
        cfg = ExecutionConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.use_csr = False


class TestAdapter:
    def test_legacy_kwargs_build_equivalent_config(self):
        cfg = ExecutionConfig.adapt(
            None,
            optimized=False,
            use_csr=True,
            bound_strategy="exact",
            batch_size=4,
            presimulate=False,
            seed=9,
        )
        assert cfg == ExecutionConfig(
            optimized=False,
            use_csr=True,
            bound_strategy="exact",
            batch_size=4,
            presimulate=False,
            seed=9,
        )

    def test_config_wins(self):
        explicit = ExecutionConfig(optimized=False)
        assert ExecutionConfig.adapt(explicit, optimized=True) is explicit

    def test_mixing_config_and_legacy_toggles_rejected(self):
        with pytest.raises(MatchingError):
            ExecutionConfig.adapt(ExecutionConfig(), use_csr=False)
        with pytest.raises(MatchingError):
            ExecutionConfig.adapt(ExecutionConfig(), scc_incremental=True)
        with pytest.raises(MatchingError):
            ExecutionConfig.adapt(ExecutionConfig(), rset_bitset=False)

    def test_mixing_config_and_other_legacy_kwargs_rejected(self):
        # Non-toggle legacy kwargs must not be silently discarded either.
        with pytest.raises(MatchingError):
            ExecutionConfig.adapt(ExecutionConfig(), optimized=False)
        with pytest.raises(MatchingError):
            ExecutionConfig.adapt(ExecutionConfig(), bound_strategy="hop")
        with pytest.raises(MatchingError):
            ExecutionConfig.adapt(ExecutionConfig(), batch_size=1)
        with pytest.raises(MatchingError):
            ExecutionConfig.adapt(ExecutionConfig(), presimulate=False)
        with pytest.raises(MatchingError):
            ExecutionConfig.adapt(ExecutionConfig(), seed=3)

    def test_config_with_default_valued_kwargs_is_fine(self):
        explicit = ExecutionConfig(optimized=False)
        assert ExecutionConfig.adapt(explicit, optimized=True, seed=0) is explicit
