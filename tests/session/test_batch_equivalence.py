"""Property suite: ``MatchSession.run_batch`` ≡ looped one-shot ``api`` calls.

The session changes *where artifacts come from* (shared candidates,
simulation prefixes, bound indexes, pair-CSRs, ranking contexts), never
what is computed — so a mixed batch executed through one session must
return answers identical to the same queries issued one at a time
through the one-shot API, across the full execution-toggle grid:

* heterogeneous batches — DAG topKP, cyclic topKP, diversified
  (heuristic and 2-approximation), the find-all baseline, and
  multi-output fan-outs — over graphs with attributes and tombstones,
  patterns with wildcards and predicates;
* every arm of the (optimized × use_csr × scc_incremental ×
  rset_bitset) grid, pinned per-query through ``QuerySpec.config``;
* batches interleaved with graph mutations: the session must detect
  the stale snapshot and refuse (``StaleSessionError``) or refresh
  explicitly — and after the refresh its answers must equal one-shot
  answers on the mutated graph.
"""

import copy
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api
from repro.errors import StaleSessionError
from repro.graph import csr
from repro.session import ExecutionConfig, MatchSession, QuerySpec

from tests.conftest import make_random_graph, make_random_pattern
from tests.test_csr_equivalence import rich_random_graph, rich_random_pattern

SETTINGS = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: The full toggle grid: the reference arm, every forced single toggle,
#: and the all-on default — including the off-diagonal combinations the
#: defaulting chain would never pick on its own.
TOGGLE_GRID = [
    ExecutionConfig(optimized=False),
    ExecutionConfig(optimized=False, rset_bitset=True),
    ExecutionConfig(optimized=False, scc_incremental=True),
    ExecutionConfig(use_csr=False),
    ExecutionConfig(use_csr=False, rset_bitset=True),
    ExecutionConfig(use_csr=True, scc_incremental=False, rset_bitset=False),
    ExecutionConfig(use_csr=True, scc_incremental=True, rset_bitset=False),
    ExecutionConfig(use_csr=True, scc_incremental=False, rset_bitset=True),
    ExecutionConfig(),
]


def mixed_batch(seed: int) -> list[QuerySpec]:
    """A deterministic heterogeneous batch with repeated patterns."""
    rng = random.Random(seed * 389 + 17)
    dag = make_random_pattern(seed, num_nodes=3, extra_edges=1, cyclic=False)
    cyc = make_random_pattern(seed + 50, num_nodes=3, extra_edges=2, cyclic=True)
    rich = rich_random_pattern(seed, cyclic=bool(seed % 2))
    multi = copy.deepcopy(dag)
    multi.set_output(0, dag.num_nodes - 1)
    specs = [
        QuerySpec(dag, k=rng.randrange(1, 4)),
        QuerySpec(cyc, k=rng.randrange(1, 4)),
        QuerySpec(dag, k=2, mode="diversified", lam=rng.choice([0.0, 0.5, 1.0])),
        QuerySpec(cyc, k=2, mode="diversified", method="approx", lam=0.5),
        QuerySpec(rich, k=3),
        QuerySpec(dag, k=3, mode="baseline"),
        QuerySpec(multi, k=2, mode="multi"),
    ]
    rng.shuffle(specs)
    return specs


def one_shot(spec: QuerySpec, graph, config: ExecutionConfig):
    if spec.mode == "topk":
        return api.top_k_matches(spec.pattern, graph, spec.k, config=config)
    if spec.mode == "baseline":
        return api.baseline_matches(spec.pattern, graph, spec.k, config=config)
    if spec.mode == "multi":
        return api.top_k_matches_multi(spec.pattern, graph, spec.k, config=config)
    return api.diversified_matches(
        spec.pattern, graph, spec.k, lam=spec.lam, method=spec.method,
        config=config,
    )


def assert_same(batch_result, loop_result) -> None:
    if isinstance(loop_result, dict):
        assert set(batch_result) == set(loop_result)
        for node in loop_result:
            assert_same(batch_result[node], loop_result[node])
        return
    assert batch_result.matches == loop_result.matches
    assert batch_result.scores == loop_result.scores
    assert batch_result.algorithm == loop_result.algorithm
    if loop_result.objective_value is None:
        assert batch_result.objective_value is None
    else:
        assert batch_result.objective_value == pytest.approx(
            loop_result.objective_value
        )


@given(seed=st.integers(0, 10_000))
@SETTINGS
def test_batch_equals_looped_one_shot_across_toggle_grid(seed):
    graph = rich_random_graph(seed)
    specs = mixed_batch(seed)
    for config in TOGGLE_GRID:
        if config.resolved().use_csr and not csr.available():
            continue
        pinned = [
            QuerySpec(
                pattern=s.pattern, k=s.k, mode=s.mode, lam=s.lam,
                method=s.method, config=config,
            )
            for s in specs
        ]
        with MatchSession(graph, config=config) as session:
            batch_results = session.run_batch(pinned)
        for spec, result in zip(specs, batch_results):
            assert_same(result, one_shot(spec, graph, config))


@given(seed=st.integers(0, 10_000))
@SETTINGS
def test_mutation_interleaving_refuse_then_refresh(seed):
    rng = random.Random(seed * 7919 + 3)
    graph = make_random_graph(seed, num_nodes=14, num_edges=26)
    specs = mixed_batch(seed)
    cut = rng.randrange(1, len(specs))
    with MatchSession(graph) as session:
        first = session.run_batch(specs[:cut])
        for spec, result in zip(specs[:cut], first):
            assert_same(result, one_shot(spec, graph, session.config))

        _mutate(graph, rng)
        assert session.stale
        with pytest.raises(StaleSessionError):
            session.run_batch(specs[cut:])

        session.refresh()
        second = session.run_batch(specs[cut:])
        for spec, result in zip(specs[cut:], second):
            assert_same(result, one_shot(spec, graph, session.config))


@given(seed=st.integers(0, 10_000))
@SETTINGS
def test_mutation_interleaving_refresh_policy(seed):
    rng = random.Random(seed * 104729 + 11)
    graph = make_random_graph(seed + 1, num_nodes=14, num_edges=26)
    specs = mixed_batch(seed + 1)
    cut = rng.randrange(1, len(specs))
    with MatchSession(graph, on_mutation="refresh") as session:
        session.run_batch(specs[:cut])
        _mutate(graph, rng)
        results = session.run_batch(specs[cut:])
        for spec, result in zip(specs[cut:], results):
            assert_same(result, one_shot(spec, graph, session.config))


def _mutate(graph, rng: random.Random) -> None:
    """A few random structural edits (always at least one)."""
    for _ in range(rng.randrange(1, 4)):
        roll = rng.random()
        if roll < 0.4:
            graph.add_node(rng.choice("ABC"))
        elif roll < 0.8:
            a = rng.randrange(graph.num_nodes)
            b = rng.randrange(graph.num_nodes)
            if a != b and not graph.has_edge(a, b):
                graph.add_edge(a, b)
            else:
                graph.add_node(rng.choice("ABC"))
        else:
            edges = list(graph.edges())
            if edges:
                src, dst = rng.choice(edges)
                graph.remove_edge(src, dst)
            else:
                graph.add_node(rng.choice("ABC"))
