"""MatchSession behaviour: laziness, staleness, cache sharing, views."""

import copy

import pytest

from repro import api
from repro.errors import MatchingError, StaleSessionError
from repro.session import ExecutionConfig, MatchSession, QueryHandle, QuerySpec

from tests.conftest import make_random_graph, make_random_pattern


@pytest.fixture()
def graph():
    return make_random_graph(3, num_nodes=16, num_edges=36)


@pytest.fixture()
def dag_pattern():
    # Seed chosen so the pattern has matches on the ``graph`` fixture.
    return make_random_pattern(7, num_nodes=3, extra_edges=1, cyclic=False)


@pytest.fixture()
def cyclic_pattern_():
    # Seed chosen so the pattern is feasible on the ``graph`` fixture
    # (matches exist — the bound index and pair state actually build).
    return make_random_pattern(0, num_nodes=3, extra_edges=2, cyclic=True)


class TestHandles:
    def test_submit_is_lazy(self, graph, dag_pattern):
        with MatchSession(graph) as session:
            handle = session.submit(dag_pattern, 3)
            assert isinstance(handle, QueryHandle)
            assert not handle.done
            assert session.stats.queries_executed == 0
            result = handle.result()
            assert handle.done
            assert session.stats.queries_executed == 1
            assert handle.result() is result  # cached, not re-executed
            assert session.stats.queries_executed == 1

    def test_result_matches_one_shot(self, graph, dag_pattern):
        expected = api.top_k_matches(dag_pattern, graph, 3)
        with MatchSession(graph) as session:
            got = session.submit(dag_pattern, 3).result()
        assert got.matches == expected.matches
        assert got.scores == expected.scores

    def test_invalid_mode_and_method_rejected(self, graph, dag_pattern):
        with MatchSession(graph) as session:
            with pytest.raises(MatchingError):
                session.submit(dag_pattern, 3, mode="magic")
            with pytest.raises(MatchingError):
                session.submit(dag_pattern, 3, mode="diversified", method="magic")
            with pytest.raises(MatchingError):
                session.submit(dag_pattern, 0)


class TestBatch:
    def test_results_in_input_order_despite_grouping(self, graph, dag_pattern,
                                                     cyclic_pattern_):
        specs = [
            QuerySpec(dag_pattern, k=3),
            QuerySpec(cyclic_pattern_, k=2),
            QuerySpec(dag_pattern, k=2, mode="diversified"),
            QuerySpec(cyclic_pattern_, k=3, mode="baseline"),
            QuerySpec(dag_pattern, k=2, mode="diversified", method="approx"),
        ]
        with MatchSession(graph) as session:
            results = session.run_batch(specs)
        assert len(results) == len(specs)
        algorithms = [r.algorithm for r in results]
        assert algorithms[0].startswith("TopK")
        assert algorithms[2] in ("TopKDH", "TopKDAGDH")
        assert algorithms[3] == "Match"
        assert algorithms[4] == "TopKDiv"
        for spec, result in zip(specs, results):
            one_shot = _one_shot(spec, graph)
            assert result.matches == one_shot.matches
            assert result.scores == one_shot.scores

    def test_accepts_handles_and_specs(self, graph, dag_pattern):
        with MatchSession(graph) as session:
            handle = session.submit(dag_pattern, 2)
            results = session.run_batch([handle, QuerySpec(dag_pattern, k=3)])
            assert results[0] is handle.result()
            assert len(results[1].matches) <= 3

    def test_batch_counter_with_result_reuse(self, graph, dag_pattern):
        with MatchSession(graph) as session:
            results = session.run_batch([QuerySpec(dag_pattern, k=2)] * 3)
            assert session.stats.batches_executed == 1
            # Identical resubmissions are served from the result store —
            # as independent copies, never shared objects.
            assert session.stats.queries_executed == 1
            assert session.stats.results_reused == 2
            assert results[0] is not results[1] and results[1] is not results[2]
            assert results[0].matches == results[1].matches == results[2].matches
            assert results[0].scores == results[1].scores == results[2].scores

    def test_reused_results_are_mutation_safe(self, graph, dag_pattern):
        with MatchSession(graph) as session:
            first = session.top_k(dag_pattern, 2)
            expected = list(first.matches)
            # A caller trashing its answer must not corrupt later serves
            # (nor the stored master).
            first.matches.clear()
            first.scores.clear()
            first.stats.total_matches = 999
            second = session.top_k(dag_pattern, 2)
            assert second.matches == expected
            assert second.stats.total_matches is None
            second.matches.append(-1)
            assert session.top_k(dag_pattern, 2).matches == expected

    def test_result_reuse_disabled(self, graph, dag_pattern):
        with MatchSession(graph, reuse_results=False) as session:
            results = session.run_batch([QuerySpec(dag_pattern, k=2)] * 2)
            assert session.stats.queries_executed == 2
            assert session.stats.results_reused == 0
            assert results[0] is not results[1]
            assert results[0].matches == results[1].matches

    def test_result_reuse_skips_custom_relevance(self, graph, dag_pattern):
        from repro.ranking.relevance import NormalisedRelevance

        with MatchSession(graph) as session:
            fn = NormalisedRelevance()
            session.top_k(dag_pattern, 2, relevance_fn=fn)
            session.top_k(dag_pattern, 2, relevance_fn=fn)
            assert session.stats.queries_executed == 2
            assert session.stats.results_reused == 0

    def test_result_store_dies_with_the_generation(self, graph, dag_pattern):
        with MatchSession(graph, on_mutation="refresh") as session:
            first = session.top_k(dag_pattern, 2)
            graph.add_node("A")
            second = session.top_k(dag_pattern, 2)
            assert second is not first  # recomputed on the new generation
            expected = api.top_k_matches(dag_pattern, graph, 2)
            assert second.matches == expected.matches


class TestCacheSharing:
    def test_repeat_queries_hit_the_cache(self, graph, cyclic_pattern_):
        with MatchSession(graph) as session:
            first = session.top_k(cyclic_pattern_, 3)
            second = session.top_k(cyclic_pattern_, 2)
        assert first.stats.sim_builds == 1 and first.stats.sim_hits == 0
        assert second.stats.sim_hits == 1 and second.stats.sim_builds == 0
        assert second.stats.bounds_hits == 1
        stats = session.cache_stats()
        assert stats["sim_builds"] == 1
        assert stats["sim_hits"] >= 1

    def test_structurally_equal_patterns_share(self, graph, dag_pattern):
        twin = copy.deepcopy(dag_pattern)
        with MatchSession(graph) as session:
            session.top_k(dag_pattern, 2)
            # Different k: bypasses the result store, so this run's
            # engine actually consults the shared artifact caches.
            result = session.top_k(twin, 3)
        assert result.stats.sim_hits == 1

    def test_multi_output_shares_one_compilation(self, graph):
        pattern = make_random_pattern(7, num_nodes=3, extra_edges=1, cyclic=False)
        pattern.set_output(0, 1)
        with MatchSession(graph) as session:
            results = session.top_k_multi(pattern, 2)
        assert set(results) == {0, 1}
        stats = session.cache_stats()
        assert stats["sim_builds"] == 1  # one fixpoint for both output nodes
        assert stats["bounds_builds"] == 1
        # Per-node answers equal dedicated single-output runs.
        for node, result in results.items():
            single = copy.deepcopy(pattern)
            single.set_output(node)
            expected = api.top_k_matches(single, graph, 2)
            assert result.matches == expected.matches
            assert result.scores == expected.scores

    def test_spec_config_overrides_session_config(self, graph, dag_pattern):
        reference = api.top_k_matches(dag_pattern, graph, 3, optimized=False)
        with MatchSession(graph) as session:
            fast = session.top_k(dag_pattern, 3)
            slow = session.submit(
                dag_pattern, 3, config=ExecutionConfig(optimized=False)
            ).result()
        assert slow.matches == reference.matches
        assert slow.scores == reference.scores
        assert fast.matches  # both arms ran in one session


class TestStaleness:
    def test_refuse_policy(self, graph, dag_pattern):
        with MatchSession(graph) as session:
            done = session.submit(dag_pattern, 2)
            done.result()
            graph.add_node("A")
            assert session.stale
            with pytest.raises(StaleSessionError):
                session.top_k(dag_pattern, 2)
            with pytest.raises(StaleSessionError):
                session.run_batch([QuerySpec(dag_pattern, k=2)])
            # Handles resolved before the mutation keep their answers.
            assert done.result().matches is not None
            session.refresh()
            refreshed = session.top_k(dag_pattern, 2)
            assert refreshed.matches == api.top_k_matches(dag_pattern, graph, 2).matches

    def test_refresh_policy_recompiles_transparently(self, graph, dag_pattern):
        with MatchSession(graph, on_mutation="refresh") as session:
            session.top_k(dag_pattern, 2)
            generation = session.cache.generation
            graph.add_edge(0, graph.num_nodes - 1) if not graph.has_edge(
                0, graph.num_nodes - 1
            ) else graph.remove_edge(0, graph.num_nodes - 1)
            result = session.top_k(dag_pattern, 2)
            assert session.cache.generation == generation + 1
            expected = api.top_k_matches(dag_pattern, graph, 2)
            assert result.matches == expected.matches
            assert result.scores == expected.scores

    def test_refresh_counts(self, graph, dag_pattern):
        with MatchSession(graph) as session:
            graph.add_node("A")
            session.refresh()
            assert session.stats.refreshes == 1
            assert session.cache_stats()["refreshes"] == 1
            # Acknowledging with fresh artifacts does not re-drop them.
            session.refresh()
            assert session.stats.refreshes == 2
            assert session.cache_stats()["refreshes"] == 1

    def test_view_rebuild_does_not_waive_the_refuse_latch(self, graph, dag_pattern):
        with MatchSession(graph) as session:
            session.register_view(dag_pattern, k=2, recompute_threshold=0)
            session.top_k(dag_pattern, 2)
            # The mutation triggers a synchronous view rebuild, which
            # refreshes the *artifact* cache — but the refuse policy
            # must still demand an explicit session.refresh().
            graph.add_node("A")
            assert session.stale
            with pytest.raises(StaleSessionError):
                session.top_k(dag_pattern, 2)
            session.refresh()
            result = session.top_k(dag_pattern, 2)
            expected = api.top_k_matches(dag_pattern, graph, 2)
            assert result.matches == expected.matches

    def test_invalid_policy_rejected(self, graph):
        with pytest.raises(MatchingError):
            MatchSession(graph, on_mutation="panic")

    def test_closed_session_refuses_queries(self, graph, dag_pattern):
        session = MatchSession(graph)
        session.close()
        with pytest.raises(MatchingError):
            session.top_k(dag_pattern, 2)
        # Idempotent close; no listener leak on double close.
        session.close()

    def test_close_detaches_listener(self, graph, dag_pattern):
        session = MatchSession(graph)
        session.top_k(dag_pattern, 2)
        session.close()
        graph.add_node("B")
        assert not session.stale  # no longer subscribed


class TestSessionViews:
    def test_view_shares_simulation_with_queries(self, graph, dag_pattern):
        with MatchSession(graph, on_mutation="refresh") as session:
            view = session.register_view(dag_pattern, k=3)
            session.top_k(dag_pattern, 3)
            stats = session.cache_stats()
            assert stats["sim_builds"] == 1  # view rebuild + query: one fixpoint
            assert sorted(view.top_k(k=100).matches) == sorted(view.matches())

    def test_view_stays_consistent_under_updates(self, graph, dag_pattern):
        with MatchSession(graph, on_mutation="refresh") as session:
            view = session.register_view(dag_pattern, k=3, recompute_threshold=0)
            # threshold 0 forces full rebuilds through the session cache.
            for _ in range(3):
                graph.add_node(dag_pattern.label(1) if dag_pattern.label(1) != "*" else "A")
            fresh = api.register_view(dag_pattern, graph, k=3, name="oracle")
            assert sorted(view.matches()) == sorted(fresh.matches())
            result = session.top_k(dag_pattern, 3)
            expected = api.top_k_matches(dag_pattern, graph, 3)
            assert result.matches == expected.matches


def _one_shot(spec: QuerySpec, graph):
    """The looped one-shot counterpart of one batch entry."""
    if spec.mode == "topk":
        return api.top_k_matches(
            spec.pattern, graph, spec.k, relevance_fn=spec.relevance_fn
        )
    if spec.mode == "baseline":
        return api.baseline_matches(
            spec.pattern, graph, spec.k, relevance_fn=spec.relevance_fn
        )
    if spec.mode == "multi":
        return api.top_k_matches_multi(
            spec.pattern, graph, spec.k, relevance_fn=spec.relevance_fn
        )
    return api.diversified_matches(
        spec.pattern, graph, spec.k, lam=spec.lam, method=spec.method,
        objective=spec.objective,
    )
