"""Spawn-safety + equivalence suite for the multiprocess serving tier.

``run_batch`` under ``ExecutionConfig(workers=N)`` must be a pure
throughput change: answers identical to the serial session (which is
itself identical to looped one-shot calls — the existing batch
equivalence suite), input order preserved, per-query configs honoured
across the toggle grid, and the parent's published stats identical to
what serial execution would have published (no double-counting when
worker stats fold back in).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import csr
from repro.obs import MetricsRegistry, use_metrics
from repro.ranking.relevance import CardinalityRelevance
from repro.session import (
    ExecutionConfig,
    MatchSession,
    QuerySpec,
    WorkerPool,
    worker_config,
)
from repro.session.parallel import spec_is_poolable
from repro.errors import MatchingError

from tests.conftest import make_random_graph
from tests.session.test_batch_equivalence import (
    TOGGLE_GRID,
    assert_same,
    mixed_batch,
    one_shot,
)
from tests.test_csr_equivalence import rich_random_graph

pytestmark = pytest.mark.skipif(not csr.available(), reason="requires numpy")

SETTINGS = settings(
    max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _pin(specs, config):
    return [
        QuerySpec(
            pattern=s.pattern, k=s.k, mode=s.mode, lam=s.lam,
            method=s.method, config=config,
        )
        for s in specs
    ]


@given(seed=st.integers(0, 10_000))
@SETTINGS
def test_pooled_equals_serial_equals_one_shot_across_toggle_grid(seed):
    """One 2-worker pool serves the full toggle grid, pinned per query."""
    graph = rich_random_graph(seed)
    specs = mixed_batch(seed)
    with MatchSession(graph, config=ExecutionConfig(workers=2)) as pooled:
        for config in TOGGLE_GRID:
            pinned = _pin(specs, config)
            pooled_results = pooled.run_batch(pinned)
            with MatchSession(graph, config=config) as serial:
                serial_results = serial.run_batch(_pin(specs, config))
            for spec, got, want in zip(specs, pooled_results, serial_results):
                assert_same(got, want)
                assert_same(got, one_shot(spec, graph, config))


@given(seed=st.integers(0, 10_000))
@SETTINGS
def test_pooled_with_sim_shards_equals_serial(seed):
    """Both parallel levels on at once: workers=2 + sharded kernel."""
    graph = rich_random_graph(seed + 3)
    specs = mixed_batch(seed + 3)
    cfg = ExecutionConfig(workers=2, sim_shards=3)
    with MatchSession(graph, config=cfg) as pooled:
        pooled_results = pooled.run_batch(specs)
    with MatchSession(graph) as serial:
        serial_results = serial.run_batch(specs)
    for got, want in zip(pooled_results, serial_results):
        assert_same(got, want)


def test_no_double_counting_in_published_stats():
    """The pooled registry sees exactly the serial registry's runs."""
    graph = make_random_graph(5, num_nodes=16, num_edges=30)
    specs = mixed_batch(5)

    serial_registry = MetricsRegistry()
    with use_metrics(serial_registry):
        with MatchSession(graph, config=ExecutionConfig(metrics=True)) as s:
            serial_results = s.run_batch(specs)

    pooled_registry = MetricsRegistry()
    with use_metrics(pooled_registry):
        cfg = ExecutionConfig(workers=2, metrics=True)
        with MatchSession(graph, config=cfg) as s:
            pooled_results = s.run_batch(specs)
            pooled_stats = s.stats

    for got, want in zip(pooled_results, serial_results):
        assert_same(got, want)

    runs = "repro_engine_runs_total"
    serial_runs = serial_registry.get(runs)
    pooled_runs = pooled_registry.get(runs)
    assert serial_runs is not None and pooled_runs is not None

    def flat(metric):
        return sorted(
            (tuple(sorted(labels.items())), value)
            for labels, value in metric.samples()
        )

    assert flat(serial_runs) == flat(pooled_runs)

    # The worker series account for every shipped query, exactly once.
    shipped = sum(
        value
        for _, value in pooled_registry.get(
            "repro_worker_queries_total"
        ).samples()
    )
    assert shipped == pooled_stats.queries_executed + pooled_stats.results_reused


def test_custom_relevance_fn_falls_back_to_parent():
    graph = make_random_graph(9, num_nodes=14, num_edges=26)
    specs = mixed_batch(9)
    # A lambda is unpicklable AND a custom relevance fn — both reasons
    # keep this query in the parent; the rest of the batch still pools.
    unpoolable = QuerySpec(
        specs[0].pattern, k=2,
        relevance_fn=CardinalityRelevance(),
    )
    assert not spec_is_poolable(unpoolable)
    batch = [unpoolable, *specs]
    with MatchSession(graph, config=ExecutionConfig(workers=2)) as pooled:
        pooled_results = pooled.run_batch(batch)
    with MatchSession(graph) as serial:
        serial_results = serial.run_batch(batch)
    for got, want in zip(pooled_results, serial_results):
        assert_same(got, want)


def test_pool_survives_batches_and_refresh_rebuilds_it():
    rng = random.Random(13)
    graph = make_random_graph(13, num_nodes=16, num_edges=30)
    specs = mixed_batch(13)
    with MatchSession(
        graph, config=ExecutionConfig(workers=2), on_mutation="refresh"
    ) as session:
        session.run_batch(specs)
        first_pool = session._pool
        session.run_batch(specs)
        assert session._pool is first_pool  # reused across batches

        graph.add_node(rng.choice("ABC"))
        graph.add_edge(graph.num_nodes - 1, rng.randrange(graph.num_nodes - 1))
        results = session.run_batch(specs)  # refresh policy recompiles
        assert session._pool is not first_pool  # stale copy dropped
        with MatchSession(graph) as serial:
            for got, want in zip(results, serial.run_batch(specs)):
                assert_same(got, want)


def test_pool_survives_selective_refresh_and_answers_match_serial():
    """Under ``snapshot_patching=True`` a refresh ships the delta log to
    the existing pool instead of dropping it — and the replayed workers
    answer exactly like a serial session over the mutated graph."""
    rng = random.Random(17)
    graph = make_random_graph(17, num_nodes=16, num_edges=30)
    specs = mixed_batch(17)
    cfg = ExecutionConfig(workers=2, snapshot_patching=True)
    with MatchSession(graph, config=cfg, on_mutation="refresh") as session:
        session.run_batch(specs)
        first_pool = session._pool
        assert first_pool is not None

        graph.add_node(rng.choice("ABC"))
        graph.add_edge(graph.num_nodes - 1, rng.randrange(graph.num_nodes - 1))
        results = session.run_batch(specs)
        assert session._pool is first_pool  # survived the refresh
        assert session.cache.stats.selective_refreshes >= 1
        with MatchSession(graph) as serial:
            for got, want in zip(results, serial.run_batch(specs)):
                assert_same(got, want)

        # A second mutation round extends the same pool's delta log.
        graph.remove_edge(*next(iter(graph.edges())))
        results = session.run_batch(specs)
        assert session._pool is first_pool
        with MatchSession(graph) as serial:
            for got, want in zip(results, serial.run_batch(specs)):
                assert_same(got, want)


def test_workers_zero_and_one_stay_serial():
    graph = make_random_graph(21, num_nodes=12, num_edges=20)
    specs = mixed_batch(21)
    for workers in (0, 1):
        with MatchSession(
            graph, config=ExecutionConfig(workers=workers)
        ) as session:
            session.run_batch(specs)
            assert session._pool is None


def test_worker_config_strips_serving_knobs():
    cfg = ExecutionConfig(
        workers=4, trace=True, metrics=True, slow_query_seconds=0.5,
        sim_shards=2, use_csr=True,
    )
    stripped = worker_config(cfg)
    assert stripped.workers == 0
    assert not stripped.trace and not stripped.metrics
    assert stripped.slow_query_seconds == float("inf")
    # Engine toggles survive — answers must not change.
    assert stripped.sim_shards == 2
    assert stripped.use_csr is True


def test_worker_pool_validation_and_close():
    graph = make_random_graph(2, num_nodes=8, num_edges=12)
    with pytest.raises(MatchingError):
        WorkerPool(graph, ExecutionConfig(), workers=1)
    pool = WorkerPool(graph, ExecutionConfig(), workers=2)
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(MatchingError):
        pool.run([(0, QuerySpec(mixed_batch(2)[0].pattern, k=1))])


def test_execution_config_validates_parallel_fields():
    with pytest.raises(MatchingError):
        ExecutionConfig(workers=-1)
    with pytest.raises(MatchingError):
        ExecutionConfig(sim_shards=-2)
    with pytest.raises(MatchingError):
        ExecutionConfig(shard_backend="gpu")
