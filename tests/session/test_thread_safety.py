"""Threaded regression tests for the R8-class get-or-create races.

Both caches fixed in this PR had the same shape the lock-discipline
rule (R8) now flags statically: an unguarded check-then-set on shared
state reachable from concurrent callers.  These tests drive the *real*
interleaving — a barrier lines N threads up on the lookup, and any
regression shows up as more than one constructed instance (a leaked
pool) or torn cache state.
"""

from __future__ import annotations

import threading

import pytest

from repro.graph import csr
from repro.session import ExecutionConfig, MatchSession

from tests.conftest import make_random_graph

THREADS = 8


def _hammer(worker) -> list:
    """Run ``worker`` on THREADS barrier-aligned threads; return results."""
    barrier = threading.Barrier(THREADS)
    results: list = [None] * THREADS
    errors: list[BaseException] = []

    def call(slot: int) -> None:
        try:
            barrier.wait()
            results[slot] = worker()
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=call, args=(slot,)) for slot in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    return results


@pytest.mark.skipif(not csr.available(), reason="requires numpy")
def test_concurrent_shard_runner_lookup_builds_one_runner(monkeypatch):
    import repro.parallel.shards as shards

    constructed: list[object] = []
    real_runner = shards.ShardRunner

    class CountingRunner(real_runner):  # type: ignore[misc, valid-type]
        def __init__(self, *args, **kwargs):
            constructed.append(self)
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(shards, "ShardRunner", CountingRunner)

    graph = make_random_graph(7, num_nodes=30, num_edges=60)
    snap = graph.snapshot()
    runners = _hammer(lambda: shards.shard_runner(snap, 3, backend="thread"))

    assert len(constructed) == 1
    assert all(runner is runners[0] for runner in runners)


def test_concurrent_worker_pool_lookup_builds_one_pool(monkeypatch):
    import repro.session.parallel as parallel

    constructed: list[object] = []

    class FakePool:
        def __init__(self, graph, cfg, workers, reuse_results=False):
            constructed.append(self)

        def close(self) -> None:
            pass

    monkeypatch.setattr(parallel, "WorkerPool", FakePool)

    graph = make_random_graph(11, num_nodes=20, num_edges=40)
    cfg = ExecutionConfig(workers=2)
    with MatchSession(graph) as session:
        pools = _hammer(lambda: session._worker_pool(cfg))
        assert len(constructed) == 1
        assert all(pool is pools[0] for pool in pools)
        session._drop_pool()
