"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph.io import load_json
from repro.patterns.io import save_pattern
from repro.workloads.paper_queries import youtube_q2


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "g.json"
    assert main(["generate", "--dataset", "synthetic", "--nodes", "300",
                 "--edges", "1200", "--out", str(path)]) == 0
    return path


class TestGenerate:
    def test_writes_graph(self, graph_file):
        g = load_json(graph_file)
        assert g.num_nodes == 300 and g.num_edges == 1200

    def test_dag_flag(self, tmp_path):
        from repro.graph.algorithms import is_dag

        path = tmp_path / "dag.json"
        main(["generate", "--dataset", "synthetic", "--nodes", "200",
              "--edges", "600", "--dag", "--out", str(path)])
        assert is_dag(load_json(path))

    def test_surrogate_dataset(self, tmp_path):
        path = tmp_path / "amz.json"
        main(["generate", "--dataset", "amazon", "--scale", "0.05", "--out", str(path)])
        g = load_json(path)
        assert g.attr(0, "group") is not None


class TestInfo:
    def test_prints_summary(self, graph_file, capsys):
        assert main(["info", "--graph", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "|V| = 300" in out and "SCCs" in out


class TestMatch:
    def _pattern_file(self, tmp_path, graph_file):
        # Extract a matching pattern from the generated graph itself.
        from repro.workloads.pattern_gen import random_dag_pattern

        g = load_json(graph_file)
        pattern = random_dag_pattern(g, 3, 2, seed=1)
        path = tmp_path / "q.json"
        save_pattern(pattern, path)
        return path

    def test_topk_json_output(self, tmp_path, graph_file, capsys):
        pattern_file = self._pattern_file(tmp_path, graph_file)
        assert main(["match", "--graph", str(graph_file), "--pattern",
                     str(pattern_file), "--k", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] in ("TopK", "TopKDAG")
        assert len(payload["matches"]) <= 3

    def test_diversify_flag(self, tmp_path, graph_file, capsys):
        pattern_file = self._pattern_file(tmp_path, graph_file)
        assert main(["match", "--graph", str(graph_file), "--pattern",
                     str(pattern_file), "--k", "3", "--diversify", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] in ("TopKDH", "TopKDAGDH")
        assert "objective_value" in payload

    def test_forced_algorithm(self, tmp_path, graph_file, capsys):
        pattern_file = self._pattern_file(tmp_path, graph_file)
        assert main(["match", "--graph", str(graph_file), "--pattern",
                     str(pattern_file), "--algorithm", "Match", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["algorithm"] == "Match"

    def test_human_readable_output(self, tmp_path, graph_file, capsys):
        pattern_file = self._pattern_file(tmp_path, graph_file)
        assert main(["match", "--graph", str(graph_file), "--pattern",
                     str(pattern_file), "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "matches in" in out
