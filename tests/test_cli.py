"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph.io import load_json
from repro.patterns.io import save_pattern
from repro.workloads.paper_queries import youtube_q2


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "g.json"
    assert main(["generate", "--dataset", "synthetic", "--nodes", "300",
                 "--edges", "1200", "--out", str(path)]) == 0
    return path


class TestGenerate:
    def test_writes_graph(self, graph_file):
        g = load_json(graph_file)
        assert g.num_nodes == 300 and g.num_edges == 1200

    def test_dag_flag(self, tmp_path):
        from repro.graph.algorithms import is_dag

        path = tmp_path / "dag.json"
        main(["generate", "--dataset", "synthetic", "--nodes", "200",
              "--edges", "600", "--dag", "--out", str(path)])
        assert is_dag(load_json(path))

    def test_surrogate_dataset(self, tmp_path):
        path = tmp_path / "amz.json"
        main(["generate", "--dataset", "amazon", "--scale", "0.05", "--out", str(path)])
        g = load_json(path)
        assert g.attr(0, "group") is not None


class TestInfo:
    def test_prints_summary(self, graph_file, capsys):
        assert main(["info", "--graph", str(graph_file)]) == 0
        out = capsys.readouterr().out
        assert "|V| = 300" in out and "SCCs" in out


class TestMatch:
    def _pattern_file(self, tmp_path, graph_file):
        # Extract a matching pattern from the generated graph itself.
        from repro.workloads.pattern_gen import random_dag_pattern

        g = load_json(graph_file)
        pattern = random_dag_pattern(g, 3, 2, seed=1)
        path = tmp_path / "q.json"
        save_pattern(pattern, path)
        return path

    def test_topk_json_output(self, tmp_path, graph_file, capsys):
        pattern_file = self._pattern_file(tmp_path, graph_file)
        assert main(["match", "--graph", str(graph_file), "--pattern",
                     str(pattern_file), "--k", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] in ("TopK", "TopKDAG")
        assert len(payload["matches"]) <= 3

    def test_diversify_flag(self, tmp_path, graph_file, capsys):
        pattern_file = self._pattern_file(tmp_path, graph_file)
        assert main(["match", "--graph", str(graph_file), "--pattern",
                     str(pattern_file), "--k", "3", "--diversify", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] in ("TopKDH", "TopKDAGDH")
        assert "objective_value" in payload

    def test_forced_algorithm(self, tmp_path, graph_file, capsys):
        pattern_file = self._pattern_file(tmp_path, graph_file)
        assert main(["match", "--graph", str(graph_file), "--pattern",
                     str(pattern_file), "--algorithm", "Match", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["algorithm"] == "Match"

    def test_human_readable_output(self, tmp_path, graph_file, capsys):
        pattern_file = self._pattern_file(tmp_path, graph_file)
        assert main(["match", "--graph", str(graph_file), "--pattern",
                     str(pattern_file), "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "matches in" in out


class TestUpdateStream:
    def _inputs(self, tmp_path, graph_file):
        from repro.graph.delta import save_delta_file
        from repro.workloads.pattern_gen import random_dag_pattern
        from repro.workloads.update_stream import random_update_stream

        g = load_json(graph_file)
        pattern = random_dag_pattern(g, 3, 2, seed=1)
        pattern_file = tmp_path / "q.json"
        save_pattern(pattern, pattern_file)
        delta_file = tmp_path / "d.jsonl"
        save_delta_file(random_update_stream(g, 40, seed=2), delta_file)
        return pattern_file, delta_file

    def test_replay_reports_view_state(self, tmp_path, graph_file, capsys):
        pattern_file, delta_file = self._inputs(tmp_path, graph_file)
        assert main(["update-stream", "--graph", str(graph_file),
                     "--pattern", str(pattern_file), "--deltas", str(delta_file),
                     "--k", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "MatchView"
        assert payload["ops_replayed"] == 40
        view = payload["view"]
        # remove_node ops expand into per-edge events, so the view sees
        # at least one event per replayed op.
        assert view["ops_applied"] + view["ops_skipped"] >= 40
        assert len(payload["matches"]) <= 3

    def test_final_answer_matches_batch_rerun(self, tmp_path, graph_file, capsys):
        from repro import api
        from repro.graph.delta import load_delta_file

        pattern_file, delta_file = self._inputs(tmp_path, graph_file)
        out_file = tmp_path / "after.json"
        assert main(["update-stream", "--graph", str(graph_file),
                     "--pattern", str(pattern_file), "--deltas", str(delta_file),
                     "--k", "3", "--json", "--out", str(out_file)]) == 0
        payload = json.loads(capsys.readouterr().out.split("wrote")[0])
        updated = load_json(out_file)
        from repro.patterns.io import load_pattern

        expected = api.baseline_matches(load_pattern(pattern_file), updated, 3)
        assert [m["node"] for m in payload["matches"]] == expected.matches

    def test_diversified_replay(self, tmp_path, graph_file, capsys):
        pattern_file, delta_file = self._inputs(tmp_path, graph_file)
        assert main(["update-stream", "--graph", str(graph_file),
                     "--pattern", str(pattern_file), "--deltas", str(delta_file),
                     "--k", "3", "--diversify", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "MatchView/TopKDiv"
        assert "objective_value" in payload


class TestBatch:
    def _batch_file(self, tmp_path, graph_file, inline: bool = False):
        from repro.patterns.io import pattern_to_dict
        from repro.workloads.pattern_gen import random_dag_pattern

        g = load_json(graph_file)
        dag = random_dag_pattern(g, 3, 2, seed=1)
        other = random_dag_pattern(g, 4, 3, seed=5)
        dag_path = tmp_path / "q_dag.json"
        save_pattern(dag, dag_path)
        queries = [
            {"pattern": "q_dag.json", "k": 5},
            {"pattern": pattern_to_dict(other) if inline else "q_dag.json",
             "k": 3, "mode": "diversified", "lam": 0.4},
            {"pattern": "q_dag.json", "k": 5, "mode": "baseline"},
        ]
        path = tmp_path / "batch.json"
        path.write_text(json.dumps({"format": "repro-batch-json", "queries": queries}))
        return path, dag_path

    def test_batch_json_output_matches_one_shot(self, tmp_path, graph_file, capsys):
        from repro import api
        from repro.patterns.io import load_pattern

        batch_file, dag_path = self._batch_file(tmp_path, graph_file, inline=True)
        assert main(["batch", "--graph", str(graph_file),
                     "--queries", str(batch_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["queries"]) == 3
        graph = load_json(graph_file)
        dag = load_pattern(dag_path)
        expected_topk = api.top_k_matches(dag, graph, 5)
        assert payload["queries"][0]["matches"] == expected_topk.matches
        expected_base = api.baseline_matches(dag, graph, 5)
        assert payload["queries"][2]["algorithm"] == "Match"
        assert payload["queries"][2]["matches"] == expected_base.matches
        cache = payload["session"]["cache"]
        assert cache["sim_hits"] >= 1  # the repeats actually shared

    def test_batch_text_output(self, tmp_path, graph_file, capsys):
        batch_file, _ = self._batch_file(tmp_path, graph_file)
        assert main(["batch", "--graph", str(graph_file),
                     "--queries", str(batch_file)]) == 0
        out = capsys.readouterr().out
        assert "session: 3 queries" in out and "cache" in out

    def test_batch_rejects_bad_format(self, tmp_path, graph_file):
        from repro.errors import MatchingError

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "nope", "queries": []}))
        with pytest.raises(MatchingError):
            main(["batch", "--graph", str(graph_file), "--queries", str(bad)])

    def test_batch_rejects_unknown_query_keys(self, tmp_path, graph_file):
        from repro.errors import MatchingError

        _, dag_path = self._batch_file(tmp_path, graph_file)
        bad = tmp_path / "typo.json"
        bad.write_text(json.dumps({
            "format": "repro-batch-json",
            "queries": [{"pattern": dag_path.name, "mod": "diversified"}],
        }))
        with pytest.raises(MatchingError, match="unknown keys.*mod"):
            main(["batch", "--graph", str(graph_file), "--queries", str(bad)])
