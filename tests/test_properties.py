"""Property-based tests (hypothesis) on the library's core invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.digraph import Graph
from repro.ranking.context import RankingContext
from repro.ranking.distance import jaccard_distance
from repro.simulation.match import maximal_simulation, naive_simulation
from repro.topk.cyclic import top_k
from repro.topk.match_all import match_baseline

from tests.conftest import make_random_graph, make_random_pattern

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

node_sets = st.sets(st.integers(min_value=0, max_value=30), max_size=12)


class TestJaccardMetricAxioms:
    @given(a=node_sets, b=node_sets)
    @SETTINGS
    def test_symmetry(self, a, b):
        assert jaccard_distance(a, b) == jaccard_distance(b, a)

    @given(a=node_sets)
    @SETTINGS
    def test_identity(self, a):
        assert jaccard_distance(a, a) == 0.0

    @given(a=node_sets, b=node_sets)
    @SETTINGS
    def test_range(self, a, b):
        assert 0.0 <= jaccard_distance(a, b) <= 1.0

    @given(a=node_sets, b=node_sets, c=node_sets)
    @SETTINGS
    def test_triangle_inequality(self, a, b, c):
        # The paper claims delta_d is a metric (Section 3.2).
        assert jaccard_distance(a, c) <= (
            jaccard_distance(a, b) + jaccard_distance(b, c) + 1e-12
        )


class TestSimulationProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_fast_fixpoint_equals_naive(self, seed):
        g = make_random_graph(seed, num_nodes=12, num_edges=24)
        q = make_random_pattern(seed + 1, num_nodes=3, extra_edges=1, cyclic=seed % 2 == 0)
        assert maximal_simulation(q, g).sim == naive_simulation(q, g)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_simulation_is_a_simulation(self, seed):
        # Every surviving pair must satisfy the forward condition.
        g = make_random_graph(seed, num_nodes=12, num_edges=24)
        q = make_random_pattern(seed + 1, num_nodes=3, extra_edges=1)
        sim = maximal_simulation(q, g).sim
        for u in q.nodes():
            for v in sim[u]:
                assert g.label(v) == q.label(u)
                for u_child in q.successors(u):
                    assert any(c in sim[u_child] for c in g.successors(v))

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_maximality_no_rejected_pair_fits(self, seed):
        # Greatest fixpoint: adding back any rejected candidate must break
        # the simulation condition immediately (one-step check).
        g = make_random_graph(seed, num_nodes=10, num_edges=18)
        q = make_random_pattern(seed + 1, num_nodes=3, extra_edges=1)
        sim = maximal_simulation(q, g).sim
        for u in q.nodes():
            for v in g.nodes():
                if g.label(v) != q.label(u) or v in sim[u]:
                    continue
                violates = any(
                    not any(c in sim[u_child] for c in g.successors(v))
                    for u_child in q.successors(u)
                )
                assert violates


class TestTopKProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000), k=st.integers(1, 4))
    @SETTINGS
    def test_engine_set_is_optimal(self, seed, k):
        g = make_random_graph(seed, num_nodes=14, num_edges=30)
        q = make_random_pattern(seed + 7, num_nodes=3, extra_edges=1, cyclic=seed % 3 == 0)
        result = maximal_simulation(q, g)
        if not result.total:
            return
        ctx = RankingContext(q, g, result)
        oracle = match_baseline(q, g, k, context=ctx)
        engine = top_k(q, g, k)
        true_sum = sum(len(ctx.relevant[v]) for v in engine.matches)
        assert true_sum == oracle.total_relevance()

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_scores_never_exceed_true_relevance(self, seed):
        g = make_random_graph(seed, num_nodes=14, num_edges=30)
        q = make_random_pattern(seed + 7, num_nodes=3, extra_edges=1)
        result = maximal_simulation(q, g)
        if not result.total:
            return
        ctx = RankingContext(q, g, result)
        engine = top_k(q, g, 3)
        for v in engine.matches:
            assert engine.scores[v] <= len(ctx.relevant[v]) + 1e-9

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_inspected_never_exceeds_total(self, seed):
        g = make_random_graph(seed, num_nodes=14, num_edges=30)
        q = make_random_pattern(seed + 7, num_nodes=3, extra_edges=1)
        result = maximal_simulation(q, g)
        if not result.total:
            return
        mu = len(result.matches_of(q.output_node))
        engine = top_k(q, g, 2)
        assert engine.stats.inspected_matches <= mu


class TestDiversificationProperties:
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        lam=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_approx_ratio_two(self, seed, lam):
        from repro.diversify.approx import top_k_diversified_approx
        from repro.diversify.exact import optimal_diversified

        g = make_random_graph(seed, num_nodes=12, num_edges=26)
        q = make_random_pattern(seed + 13, num_nodes=3, extra_edges=1)
        result = maximal_simulation(q, g)
        if not result.total:
            return
        ctx = RankingContext(q, g, result)
        if len(ctx.matches) > 12:
            return
        k = min(3, len(ctx.matches))
        approx = top_k_diversified_approx(q, g, k, lam=lam, context=ctx)
        _, best = optimal_diversified(ctx, k, lam=lam)
        assert approx.objective_value >= best / 2 - 1e-9


class TestGeneratorProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=5, max_value=40),
    )
    @SETTINGS
    def test_synthetic_graph_meets_sizes(self, seed, n):
        from repro.datasets.synthetic import synthetic_graph

        e = min(2 * n, n * (n - 1) // 4)
        g = synthetic_graph(n, e, seed=seed)
        assert g.num_nodes == n
        assert g.num_edges == e

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_dag_mode_is_acyclic(self, seed):
        from repro.datasets.synthetic import synthetic_graph
        from repro.graph.algorithms import is_dag

        g = synthetic_graph(20, 40, seed=seed, cyclic=False)
        assert is_dag(g)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_seeded_determinism(self, seed):
        from repro.datasets.synthetic import synthetic_graph

        a = synthetic_graph(15, 30, seed=seed)
        b = synthetic_graph(15, 30, seed=seed)
        assert list(a.edges()) == list(b.edges())
        assert [a.label(v) for v in a.nodes()] == [b.label(v) for v in b.nodes()]
