"""Tests for the greedy MAXDISP core."""

from repro.diversify.maxdisp import greedy_max_dispersion


def pair_weight_from(matrix):
    def weight(a, b):
        return matrix[(min(a, b), max(a, b))]
    return weight


class TestGreedyMaxDispersion:
    def test_selects_best_pair_first(self):
        weights = {(0, 1): 10.0, (0, 2): 1.0, (1, 2): 1.0}
        chosen = greedy_max_dispersion([0, 1, 2], 2, pair_weight_from(weights))
        assert set(chosen) == {0, 1}

    def test_k_larger_than_items_returns_all(self):
        chosen = greedy_max_dispersion([1, 2], 5, lambda a, b: 0.0)
        assert chosen == [1, 2]

    def test_odd_k_uses_single_weight(self):
        weights = {(0, 1): 10.0, (0, 2): 0.0, (1, 2): 0.0, (0, 3): 0.0, (1, 3): 0.0, (2, 3): 0.0}
        chosen = greedy_max_dispersion(
            [0, 1, 2, 3], 3, pair_weight_from(weights),
            single_weight=lambda v: 100.0 if v == 3 else 0.0,
        )
        assert set(chosen) >= {0, 1}
        assert 3 in chosen

    def test_odd_k_counts_pairs_to_selected(self):
        weights = {(0, 1): 10.0, (0, 2): 5.0, (1, 2): 5.0, (0, 3): 0.0, (1, 3): 0.0, (2, 3): 0.0}
        chosen = greedy_max_dispersion([0, 1, 2, 3], 3, pair_weight_from(weights))
        assert set(chosen) == {0, 1, 2}

    def test_two_rounds(self):
        weights = {}
        for i in range(5):
            for j in range(i + 1, 5):
                weights[(i, j)] = 0.0
        weights[(0, 1)] = 10.0
        weights[(2, 3)] = 9.0
        chosen = greedy_max_dispersion(list(range(5)), 4, pair_weight_from(weights))
        assert set(chosen) == {0, 1, 2, 3}

    def test_approximation_ratio_on_random_instances(self):
        import itertools
        import random

        for seed in range(10):
            rng = random.Random(seed)
            items = list(range(7))
            weights = {
                (i, j): rng.uniform(0, 1)
                for i in items
                for j in items
                if i < j
            }
            w = pair_weight_from(weights)
            k = 4
            chosen = greedy_max_dispersion(items, k, w)
            chosen_score = sum(w(a, b) for a, b in itertools.combinations(chosen, 2))
            best = max(
                sum(w(a, b) for a, b in itertools.combinations(sub, 2))
                for sub in itertools.combinations(items, k)
            )
            assert chosen_score >= best / 2 - 1e-9  # Hassin et al. ratio
