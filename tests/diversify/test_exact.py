"""Tests for the brute-force diversification oracle."""

import pytest

from repro.diversify.exact import optimal_diversified
from repro.errors import MatchingError
from repro.ranking.context import RankingContext


class TestOptimalDiversified:
    def test_guard_against_large_instances(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        with pytest.raises(MatchingError):
            optimal_diversified(ctx, 2, max_matches=2)

    def test_k_at_least_matches_returns_all(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        best, score = optimal_diversified(ctx, 10, lam=0.5)
        assert len(best) == 4 and score > 0

    def test_optimal_beats_every_subset(self, fig1):
        from itertools import combinations

        from repro.ranking.diversification import DiversificationObjective

        ctx = RankingContext(fig1.pattern, fig1.graph)
        _, best = optimal_diversified(ctx, 2, lam=0.4)
        obj = DiversificationObjective(lam=0.4, k=2)
        obj.prepare(ctx)
        for subset in combinations(ctx.matches, 2):
            assert best >= obj.score_matches(ctx, list(subset)) - 1e-12
