"""Tests for TopKDiv (2-approximation)."""

import pytest

from repro.diversify.approx import top_k_diversified_approx
from repro.diversify.exact import optimal_diversified
from repro.errors import MatchingError
from repro.graph.digraph import Graph
from repro.patterns.pattern import pattern_from_edges
from repro.ranking.context import RankingContext
from repro.ranking.diversification import DiversificationObjective


class TestTopKDiv:
    def test_computes_all_matches(self, fig1):
        result = top_k_diversified_approx(fig1.pattern, fig1.graph, 2, lam=0.5)
        assert result.stats.match_ratio == 1.0
        assert result.algorithm == "TopKDiv"

    def test_objective_value_reported(self, fig1):
        result = top_k_diversified_approx(fig1.pattern, fig1.graph, 2, lam=0.6)
        assert result.objective_value is not None

    def test_within_factor_two_of_optimum(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        for lam in (0.0, 0.25, 0.5, 0.75, 1.0):
            result = top_k_diversified_approx(fig1.pattern, fig1.graph, 2, lam=lam)
            _, best = optimal_diversified(ctx, 2, lam=lam)
            assert result.objective_value >= best / 2 - 1e-9

    def test_odd_k(self, fig1):
        result = top_k_diversified_approx(fig1.pattern, fig1.graph, 3, lam=0.5)
        assert len(result.matches) == 3

    def test_k_exceeding_matches(self, fig1):
        result = top_k_diversified_approx(fig1.pattern, fig1.graph, 9, lam=0.5)
        assert len(result.matches) == 4

    def test_mismatched_objective_k_rejected(self, fig1):
        objective = DiversificationObjective(lam=0.5, k=3)
        with pytest.raises(MatchingError):
            top_k_diversified_approx(fig1.pattern, fig1.graph, 2, objective=objective)

    def test_no_match_graph(self):
        g = Graph()
        g.add_nodes(["A", "B"])
        q = pattern_from_edges(["A", "B"], [(0, 1)], 0)
        result = top_k_diversified_approx(q, g, 2)
        assert result.matches == []
