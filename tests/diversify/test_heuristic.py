"""Tests for TopKDH / TopKDAGDH (early-terminating heuristic)."""

import pytest

from repro.diversify.heuristic import top_k_diversified_heuristic
from repro.errors import MatchingError
from repro.ranking.context import RankingContext
from repro.ranking.diversification import DiversificationObjective


class TestTopKDH:
    def test_returns_k_matches(self, fig1):
        result = top_k_diversified_heuristic(fig1.pattern, fig1.graph, 2, lam=0.5)
        assert len(result.matches) == 2

    def test_objective_reported(self, fig1):
        result = top_k_diversified_heuristic(fig1.pattern, fig1.graph, 2, lam=0.5)
        assert result.objective_value is not None and result.objective_value > 0

    def test_respects_lambda_extremes(self, fig1):
        relevance_only = top_k_diversified_heuristic(fig1.pattern, fig1.graph, 2, lam=0.0)
        names = fig1.names(relevance_only.matches)
        assert "PM2" in names  # the most relevant match always survives lam=0

    def test_quality_vs_exhaustive_f(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        from repro.diversify.exact import optimal_diversified

        for lam in (0.1, 0.3, 0.5):
            result = top_k_diversified_heuristic(fig1.pattern, fig1.graph, 2, lam=lam)
            obj = DiversificationObjective(lam=lam, k=2)
            obj.prepare(ctx)
            achieved = obj.score_matches(ctx, result.matches)
            _, best = optimal_diversified(ctx, 2, lam=lam)
            assert achieved >= 0.5 * best - 1e-9

    def test_high_lambda_pays_for_early_termination(self, fig1):
        # At lam=0.9 the optimum needs PM1, which Proposition 3 retires
        # before it is ever inspected: the heuristic (by design — it
        # inspects no more matches than TopK) cannot recover it.  The
        # paper gives no guarantee for TopKDH; we pin the behaviour.
        from repro.diversify.exact import optimal_diversified

        ctx = RankingContext(fig1.pattern, fig1.graph)
        result = top_k_diversified_heuristic(fig1.pattern, fig1.graph, 2, lam=0.9)
        obj = DiversificationObjective(lam=0.9, k=2)
        obj.prepare(ctx)
        achieved = obj.score_matches(ctx, result.matches)
        _, best = optimal_diversified(ctx, 2, lam=0.9)
        assert achieved >= 0.25 * best - 1e-9

    def test_mismatched_objective_k_rejected(self, fig1):
        objective = DiversificationObjective(lam=0.5, k=5)
        with pytest.raises(MatchingError):
            top_k_diversified_heuristic(fig1.pattern, fig1.graph, 2, objective=objective)

    def test_nopt_variant_still_correct_size(self, fig1):
        result = top_k_diversified_heuristic(
            fig1.pattern, fig1.graph, 2, lam=0.5, optimized=False, seed=3
        )
        assert len(result.matches) == 2
