"""Tests for DOT export."""

import pytest

from repro.ranking.context import RankingContext
from repro.viz import graph_dot, pattern_dot, result_graph_dot


class TestGraphDot:
    def test_contains_nodes_and_edges(self, fig1):
        dot = graph_dot(fig1.graph)
        assert dot.startswith("digraph G {") and dot.endswith("}")
        assert f"n{fig1.node('PM2')}" in dot
        assert "->" in dot

    def test_max_nodes_guard(self, fig1):
        dot = graph_dot(fig1.graph, max_nodes=2)
        assert dot.count("[label=") == 2


class TestPatternDot:
    def test_output_node_marked(self, fig1):
        dot = pattern_dot(fig1.pattern)
        assert "doublecircle" in dot and "PM *" in dot

    def test_predicates_rendered(self):
        from repro.workloads.paper_queries import youtube_q1

        dot = pattern_dot(youtube_q1())
        assert "rate>2" in dot


class TestResultGraphDot:
    def test_induced_subgraph(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        dot = result_graph_dot(ctx, fig1.node("PM1"))
        # PM1 + its 4 relevant matches, nothing else.
        assert dot.count("[label=") == 5
        assert "style=bold" in dot

    def test_non_match_rejected(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        with pytest.raises(KeyError):
            result_graph_dot(ctx, fig1.node("ST1"))
