"""Tests for result containers."""

from repro.topk.result import EngineStats, TopKResult


class TestEngineStats:
    def test_match_ratio_none_until_total_known(self):
        stats = EngineStats(inspected_matches=5)
        assert stats.match_ratio is None

    def test_match_ratio(self):
        stats = EngineStats(inspected_matches=5, total_matches=10)
        assert stats.match_ratio == 0.5

    def test_zero_total(self):
        assert EngineStats(total_matches=0).match_ratio == 0.0


class TestTopKResult:
    def test_container_protocol(self):
        result = TopKResult([3, 1], {3: 5.0, 1: 2.0}, "TopK")
        assert len(result) == 2
        assert list(result) == [3, 1]
        assert result.as_set() == {1, 3}

    def test_total_relevance(self):
        result = TopKResult([3, 1], {3: 5.0, 1: 2.0}, "TopK")
        assert result.total_relevance() == 7.0

    def test_missing_scores_count_zero(self):
        result = TopKResult([3, 1], {3: 5.0}, "TopK")
        assert result.total_relevance() == 5.0
