"""Engine-level tests: state vectors, termination, totality, batching."""

import pytest

from repro.errors import MatchingError
from repro.graph.digraph import Graph
from repro.patterns.pattern import pattern_from_edges
from repro.topk.cyclic import top_k
from repro.topk.dag import top_k_dag
from repro.topk.engine import TopKEngine
from repro.topk.policies import RelevancePolicy


class TestEngineBasics:
    def test_invalid_k_rejected(self, fig1):
        with pytest.raises(MatchingError):
            TopKEngine(fig1.pattern, fig1.graph, 0, policy=RelevancePolicy())

    def test_empty_candidates_short_circuit(self):
        g = Graph()
        g.add_node("A")
        q = pattern_from_edges(["A", "Z"], [(0, 1)], 0)
        result = TopKEngine(q, g, 3, policy=RelevancePolicy()).run()
        assert result.matches == []
        assert result.stats.pairs_created == 0

    def test_totality_enforced(self):
        # A->B exists but pattern also needs isolated label C somewhere.
        g = Graph()
        g.add_nodes(["A", "B", "C"])
        g.add_edge(0, 1)
        q = pattern_from_edges(["A", "B", "C"], [(0, 1), (1, 2)], 0)
        result = top_k(q, g, 2)
        assert result.matches == []

    def test_debug_state_vector(self, fig1):
        engine = TopKEngine(fig1.pattern, fig1.graph, 2, policy=RelevancePolicy())
        engine.run()
        state = engine.debug_state(0, fig1.node("PM2"))
        assert state["status"] == "confirmed"
        assert state["l"] == 8

    def test_confirmed_matches_view(self, fig1):
        engine = TopKEngine(fig1.pattern, fig1.graph, 2, policy=RelevancePolicy())
        engine.run()
        assert engine.confirmed_matches(3) <= set(fig1.graph.nodes())

    def test_batch_size_one(self, fig1):
        result = top_k(fig1.pattern, fig1.graph, 2, batch_size=1)
        assert result.total_relevance() == 14.0

    def test_presimulate_off_still_correct(self, fig1):
        result = top_k(fig1.pattern, fig1.graph, 2, presimulate=False)
        assert result.total_relevance() == 14.0

    @pytest.mark.parametrize("strategy", ["hop", "exact", "counting", "global"])
    def test_all_bound_strategies_correct(self, fig1, strategy):
        result = top_k(
            fig1.pattern, fig1.graph, 2, presimulate=False, bound_strategy=strategy
        )
        assert result.total_relevance() == 14.0


class TestScoresAreLowerBounds:
    def test_exhaustive_run_reports_exact_scores(self, fig1):
        result = top_k(fig1.pattern, fig1.graph, 4)
        assert result.scores[fig1.node("PM2")] == 8.0

    def test_fewer_matches_than_k(self, fig1):
        result = top_k(fig1.pattern, fig1.graph, 10)
        assert len(result.matches) == 4


class TestDagEngineRejectsCycles:
    def test_cyclic_pattern_rejected(self, fig1):
        with pytest.raises(MatchingError):
            top_k_dag(fig1.pattern, fig1.graph, 2)
