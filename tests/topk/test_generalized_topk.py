"""Generalised top-k matching (Proposition 4): custom relevance functions
flow through the early-termination engine and still match the oracle."""

import pytest

from repro.ranking.context import RankingContext
from repro.ranking.generalized import (
    CommonNeighbours,
    JaccardCoefficient,
    PreferentialAttachment,
)
from repro.simulation.match import maximal_simulation
from repro.topk.cyclic import top_k
from repro.topk.match_all import match_baseline

from tests.conftest import make_random_graph, make_random_pattern

FUNCTIONS = [PreferentialAttachment, CommonNeighbours, JaccardCoefficient]


def _true_sum(ctx, fn, matches):
    fn.prepare(ctx)
    return sum(fn.value(ctx, v, ctx.relevant[v]) for v in matches)


class TestGeneralizedOnFigure1:
    @pytest.mark.parametrize("make_fn", FUNCTIONS)
    def test_engine_matches_oracle(self, fig1, make_fn):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        oracle = match_baseline(fig1.pattern, fig1.graph, 2, relevance_fn=make_fn())
        engine = top_k(fig1.pattern, fig1.graph, 2, relevance_fn=make_fn())
        fn = make_fn()
        assert abs(
            _true_sum(ctx, fn, engine.matches) - _true_sum(ctx, fn, oracle.matches)
        ) < 1e-9

    def test_preferential_attachment_ranks_like_cardinality_here(self, fig1):
        # |R(u)| is constant per pattern, so PA ranks exactly like δr.
        plain = top_k(fig1.pattern, fig1.graph, 2)
        pa = top_k(fig1.pattern, fig1.graph, 2, relevance_fn=PreferentialAttachment())
        assert set(plain.matches) == set(pa.matches)


class TestGeneralizedOnRandomGraphs:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("make_fn", FUNCTIONS)
    def test_engine_matches_oracle(self, seed, make_fn):
        g = make_random_graph(seed, num_nodes=16, num_edges=34)
        q = make_random_pattern(seed + 41, num_nodes=3, extra_edges=1, cyclic=seed % 2 == 0)
        result = maximal_simulation(q, g)
        if not result.total:
            pytest.skip("instance has no match")
        ctx = RankingContext(q, g, result)
        fn = make_fn()
        oracle = match_baseline(q, g, 2, relevance_fn=make_fn())
        engine = top_k(q, g, 2, relevance_fn=make_fn())
        assert abs(
            _true_sum(ctx, fn, engine.matches) - _true_sum(ctx, fn, oracle.matches)
        ) < 1e-9
