"""Property suite: incremental SCC group machinery ≡ the rescan oracle.

The cyclic engine's nontrivial-SCC group machinery exists in two
implementations: the rescan reference (scratch Tarjan over all confirmed
pairs per merge round, full child-fan-out rescans per resolve event) and
the incremental machinery (frontier-driven cycle collapse over a
compiled pair-CSR, counter-gated settlement).  This suite pins their
equivalence on randomized cyclic patterns and randomized confirmation
orders:

* engines differing only in ``scc_incremental`` are deterministic twins
  — identical matches, scores, and the full per-pair vector ``v.T``
  (status, relevant set, finalisation flag);
* group membership after incremental merges equals a from-scratch
  Tarjan recomputation over the confirmed pair graph (adjacency rebuilt
  from the raw graph, independent of the engine's pair-CSR), and pairs
  sharing a group share one relevant set with every member's data node
  included (Example 8's self-inclusion);
* the settlement counters (external pending, unresolved in-component
  children) match a from-scratch recount at every group root.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import csr
from repro.graph.algorithms import strongly_connected_components
from repro.patterns.pattern import Pattern
from repro.topk.engine import CONFIRMED, PENDING, TopKEngine
from repro.topk.policies import RelevancePolicy
from repro.topk.selection import GreedySelection, RandomSelection

from tests.conftest import make_random_graph
from tests.test_csr_equivalence import rich_random_graph, rich_random_pattern

pytestmark = pytest.mark.skipif(not csr.available(), reason="numpy unavailable")

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

# Two labels instead of three: triples the fraction of (pattern, graph)
# draws whose simulation is total, so most hypothesis examples exercise
# real confirmed-pair cycles instead of returning infeasible early.
LABELS = "AB"


def cyclic_pattern(seed: int) -> Pattern:
    """A random pattern guaranteed to carry at least one pattern cycle."""
    rng = random.Random(seed * 613 + 29)
    num_nodes = rng.randrange(3, 6)
    p = Pattern()
    for _ in range(num_nodes):
        p.add_node(rng.choice(LABELS))
    parent = [0] * num_nodes
    for child in range(1, num_nodes):
        parent[child] = rng.randrange(child)
        p.add_edge(parent[child], child)
    # Reverse one tree edge: a guaranteed 2-cycle (nontrivial SCC).
    back = rng.randrange(1, num_nodes)
    if not p.has_edge(back, parent[back]):
        p.add_edge(back, parent[back])
    for _ in range(2):
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a != b and not p.has_edge(a, b):
            p.add_edge(a, b)
    p.set_output(0)
    return p


def build_engine(
    pattern, graph, k=3, incremental=True, sel_seed=None, batch_size=None,
    use_csr=True,
):
    strategy = GreedySelection() if sel_seed is None else RandomSelection(sel_seed)
    engine = TopKEngine(
        pattern,
        graph,
        k,
        policy=RelevancePolicy(),
        strategy=strategy,
        batch_size=batch_size,
        use_csr=use_csr,
        scc_incremental=incremental,
    )
    result = engine.run()
    return engine, result


def assert_pair_states_equal(pattern, engine_a, engine_b):
    for u in pattern.nodes():
        for v in engine_a.candidates.lists[u]:
            assert engine_a.debug_state(u, v) == engine_b.debug_state(u, v)


def confirmed_pair_sccs(engine, comp):
    """From-scratch Tarjan over the comp's confirmed pair graph.

    Adjacency is rebuilt from the raw graph and the pid maps — it shares
    nothing with the engine's compiled pair-CSR or condensed group
    edges, so it is a genuinely independent oracle.
    """
    confirmed = [
        pid for pid in engine._comp_pairs[comp] if engine._status[pid] == CONFIRMED
    ]
    index_of = {pid: i for i, pid in enumerate(confirmed)}
    adjacency = [[] for _ in confirmed]
    for pid, i in index_of.items():
        u, v = engine._pair_u[pid], engine._pair_v[pid]
        for local_idx, u_child in enumerate(engine._out_edges[u]):
            if engine._edge_external[u][local_idx]:
                continue
            for v_child in engine.graph.successors(v):
                q = engine._pid_of[u_child].get(v_child)
                if q is not None and q in index_of:
                    adjacency[i].append(index_of[q])
    sccs = strongly_connected_components(len(confirmed), lambda i: adjacency[i])
    return confirmed, [[confirmed[i] for i in scc] for scc in sccs]


class TestDeterministicTwins:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_all_four_toggle_combinations_are_deterministic_twins(self, seed):
        """CSR/dict substrate × incremental/rescan machinery all agree.

        The off-diagonal combinations are live too: the incremental
        machinery on the dict substrate compiles its pair-CSR from the
        pid dicts and graph adjacency instead of the snapshot arrays.
        """
        graph = rich_random_graph(seed)
        pattern = rich_random_pattern(seed + 1, cyclic=True)
        engines = [
            build_engine(pattern, graph, incremental=inc, use_csr=use_csr)
            for use_csr in (True, False)
            for inc in (True, False)
        ]
        (ref_engine, ref), rest = engines[0], engines[1:]
        for engine, result in rest:
            assert result.matches == ref.matches
            assert result.scores == ref.scores
            if not ref_engine._infeasible:
                assert_pair_states_equal(pattern, ref_engine, engine)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_cyclic_patterns_twin(self, seed):
        graph = make_random_graph(seed, num_nodes=14, num_edges=34, labels=LABELS)
        pattern = cyclic_pattern(seed + 2)
        inc_engine, inc = build_engine(pattern, graph, incremental=True)
        ref_engine, ref = build_engine(pattern, graph, incremental=False)
        assert inc.matches == ref.matches
        assert inc.scores == ref.scores
        if not inc_engine._infeasible:
            assert_pair_states_equal(pattern, inc_engine, ref_engine)

    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        sel_seed=st.integers(min_value=0, max_value=50),
        batch_size=st.sampled_from([1, 2, None]),
    )
    @SETTINGS
    def test_randomized_confirmation_orders_twin(self, seed, sel_seed, batch_size):
        """Random seed selection + tiny batches permute the event order."""
        graph = make_random_graph(seed, num_nodes=14, num_edges=34, labels=LABELS)
        pattern = cyclic_pattern(seed + 3)
        inc_engine, inc = build_engine(
            pattern, graph, incremental=True, sel_seed=sel_seed, batch_size=batch_size
        )
        ref_engine, ref = build_engine(
            pattern, graph, incremental=False, sel_seed=sel_seed, batch_size=batch_size
        )
        assert inc.matches == ref.matches
        assert inc.scores == ref.scores
        if not inc_engine._infeasible:
            assert_pair_states_equal(pattern, inc_engine, ref_engine)


class TestScratchTarjanOracle:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_group_membership_equals_scratch_sccs(self, seed):
        graph = make_random_graph(seed, num_nodes=14, num_edges=34, labels=LABELS)
        pattern = cyclic_pattern(seed + 4)
        engine, _ = build_engine(pattern, graph, incremental=True)
        if engine._infeasible:
            return
        for comp in engine._nontrivial:
            confirmed, sccs = confirmed_pair_sccs(engine, comp)
            by_group = {}
            for pid in confirmed:
                root = engine._find(engine._group_of[pid])
                by_group.setdefault(root, set()).add(pid)
            assert {frozenset(scc) for scc in sccs} == {
                frozenset(members) for members in by_group.values()
            }

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_cycle_groups_share_self_including_relevant_sets(self, seed):
        graph = make_random_graph(seed, num_nodes=14, num_edges=34, labels=LABELS)
        pattern = cyclic_pattern(seed + 5)
        engine, _ = build_engine(pattern, graph, incremental=True)
        if engine._infeasible:
            return
        for comp in engine._nontrivial:
            _, sccs = confirmed_pair_sccs(engine, comp)
            for scc in sccs:
                if len(scc) < 2:
                    continue
                shared = engine.rset_of(scc[0])
                for pid in scc:
                    # One shared set per pair-cycle, containing every
                    # member's data node (Example 8's self-inclusion).
                    assert engine.rset_of(pid) is shared
                    assert engine._pair_v[pid] in shared


class TestSettlementCounters:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_counters_match_scratch_recount(self, seed):
        graph = make_random_graph(seed, num_nodes=14, num_edges=34, labels=LABELS)
        pattern = cyclic_pattern(seed + 6)
        engine, _ = build_engine(pattern, graph, incremental=True)
        if engine._infeasible:
            return
        status = engine._status
        for comp in engine._nontrivial:
            if engine._comp_finalized[comp]:
                # Wholesale finalisation stops counter maintenance.
                continue
            roots = {
                engine._find(engine._group_of[pid])
                for pid in engine._comp_pairs[comp]
                if status[pid] == CONFIRMED
            }
            for root in roots:
                members = engine._g_members[root]
                assert engine._g_ext_pending[root] == sum(
                    engine._pending[pid] for pid in members
                )
                unresolved = 0
                for pid in members:
                    u, v = engine._pair_u[pid], engine._pair_v[pid]
                    for local_idx, u_child in enumerate(engine._out_edges[u]):
                        if engine._edge_external[u][local_idx]:
                            continue
                        for v_child in engine.graph.successors(v):
                            q = engine._pid_of[u_child].get(v_child)
                            if q is not None and status[q] == PENDING:
                                unresolved += 1
                assert engine._g_unresolved[root] == unresolved


class TestKnownCycle:
    def test_triangle_collapses_to_one_group(self):
        """A 3-cycle pattern on a 3-cycle graph: one group, full rset."""
        from repro.graph.digraph import Graph

        graph = Graph()
        for label in "ABC":
            graph.add_node(label)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 0)
        pattern = Pattern()
        for label in "ABC":
            pattern.add_node(label)
        pattern.add_edge(0, 1)
        pattern.add_edge(1, 2)
        pattern.add_edge(2, 0)
        pattern.set_output(0)
        engine, result = build_engine(pattern, graph, k=1, incremental=True)
        assert result.matches == [0]
        pids = [engine._pid_of[u][v] for u, v in [(0, 0), (1, 1), (2, 2)]]
        roots = {engine._find(engine._group_of[pid]) for pid in pids}
        assert len(roots) == 1
        assert engine.rset_of(pids[0]) == {0, 1, 2}
        assert all(engine._finalized[pid] for pid in pids)
