"""Tests for the Match baseline."""

import pytest

from repro.errors import MatchingError
from repro.graph.digraph import Graph
from repro.patterns.pattern import pattern_from_edges
from repro.ranking.context import RankingContext
from repro.topk.match_all import match_baseline


class TestMatchBaseline:
    def test_returns_exact_top_k(self, fig1):
        result = match_baseline(fig1.pattern, fig1.graph, 2)
        assert result.algorithm == "Match"
        assert result.total_relevance() == 14.0

    def test_inspects_everything(self, fig1):
        result = match_baseline(fig1.pattern, fig1.graph, 2)
        assert result.stats.inspected_matches == result.stats.total_matches == 4
        assert result.stats.match_ratio == 1.0

    def test_k_larger_than_matches_returns_all(self, fig1):
        result = match_baseline(fig1.pattern, fig1.graph, 50)
        assert len(result.matches) == 4

    def test_no_match_graph(self):
        g = Graph()
        g.add_nodes(["A", "B"])  # A has no B child
        q = pattern_from_edges(["A", "B"], [(0, 1)], 0)
        result = match_baseline(q, g, 3)
        assert result.matches == []
        assert result.stats.total_matches == 0

    def test_invalid_k(self, fig1):
        with pytest.raises(MatchingError):
            match_baseline(fig1.pattern, fig1.graph, 0)

    def test_context_reuse(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        result = match_baseline(fig1.pattern, fig1.graph, 2, context=ctx)
        assert result.total_relevance() == 14.0

    def test_scores_are_exact(self, fig1):
        result = match_baseline(fig1.pattern, fig1.graph, 4)
        assert result.scores[fig1.node("PM2")] == 8.0
        assert result.scores[fig1.node("PM1")] == 4.0
