"""Tests for selection policies."""

from repro.ranking.diversification import DiversificationObjective
from repro.topk.engine import TopKEngine
from repro.topk.policies import DiversifiedPolicy, RelevancePolicy


class TestRelevancePolicy:
    def test_selection_orders_by_lower_bound(self, fig1):
        engine = TopKEngine(fig1.pattern, fig1.graph, 2, policy=RelevancePolicy())
        engine.run()
        chosen = engine.policy.selection(2)
        values = [engine.lower_value(pid) for _, pid in chosen]
        assert values == sorted(values, reverse=True)

    def test_selection_capped_at_k(self, fig1):
        engine = TopKEngine(fig1.pattern, fig1.graph, 2, policy=RelevancePolicy())
        engine.run()
        assert len(engine.policy.selection(2)) == 2
        # Early termination may leave some matches unconfirmed.
        assert 2 <= len(engine.policy.selection(10)) <= 4

    def test_objective_value_is_none(self, fig1):
        engine = TopKEngine(fig1.pattern, fig1.graph, 2, policy=RelevancePolicy())
        engine.run()
        assert engine.policy.objective_value(2) is None


class TestDiversifiedPolicy:
    def test_integrates_greedy_swaps(self, fig1):
        policy = DiversifiedPolicy(DiversificationObjective(lam=0.9, k=2))
        engine = TopKEngine(fig1.pattern, fig1.graph, 2, policy=policy)
        engine.run()
        chosen = {v for v, _ in policy.selection(2)}
        assert len(chosen) == 2

    def test_objective_value_positive(self, fig1):
        policy = DiversifiedPolicy(DiversificationObjective(lam=0.5, k=2))
        engine = TopKEngine(fig1.pattern, fig1.graph, 2, policy=policy)
        engine.run()
        assert policy.objective_value(2) > 0

    def test_no_matches_no_objective(self):
        from repro.graph.digraph import Graph
        from repro.patterns.pattern import pattern_from_edges

        g = Graph()
        g.add_nodes(["A", "B"])
        q = pattern_from_edges(["A", "B"], [(0, 1)], 0)
        policy = DiversifiedPolicy(DiversificationObjective(lam=0.5, k=2))
        engine = TopKEngine(q, g, 2, policy=policy)
        engine.run()
        assert policy.objective_value(2) is None
