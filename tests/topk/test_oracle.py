"""Oracle tests: every top-k engine variant equals Match on random inputs.

The correctness contract of Proposition 3 is about the *set*: the sum of
true relevance over the returned set must equal the optimal sum (scores
may be reported as lower bounds).
"""

import pytest

from repro.ranking.context import RankingContext
from repro.simulation.match import maximal_simulation
from repro.topk.cyclic import top_k
from repro.topk.dag import top_k_dag
from repro.topk.match_all import match_baseline

from tests.conftest import make_random_graph, make_random_pattern


def _true_sum(ctx, matches):
    return sum(len(ctx.relevant[v]) for v in matches)


def _case(seed, cyclic):
    g = make_random_graph(seed, num_nodes=18, num_edges=40)
    q = make_random_pattern(seed + 31, num_nodes=4, extra_edges=2, cyclic=cyclic)
    result = maximal_simulation(q, g)
    if not result.total:
        pytest.skip("instance has no match")
    return g, q, RankingContext(q, g, result)


@pytest.mark.parametrize("seed", range(25))
@pytest.mark.parametrize("k", [1, 3])
class TestTopKEqualsMatch:
    def test_cyclic_engine(self, seed, k):
        g, q, ctx = _case(seed, cyclic=True)
        oracle = match_baseline(q, g, k, context=ctx)
        result = top_k(q, g, k)
        assert _true_sum(ctx, result.matches) == oracle.total_relevance()
        assert len(result.matches) == len(oracle.matches)

    def test_cyclic_engine_nopt(self, seed, k):
        g, q, ctx = _case(seed, cyclic=True)
        oracle = match_baseline(q, g, k, context=ctx)
        result = top_k(q, g, k, optimized=False, seed=seed)
        assert _true_sum(ctx, result.matches) == oracle.total_relevance()

    def test_cyclic_engine_small_batches(self, seed, k):
        g, q, ctx = _case(seed, cyclic=True)
        oracle = match_baseline(q, g, k, context=ctx)
        result = top_k(q, g, k, batch_size=1)
        assert _true_sum(ctx, result.matches) == oracle.total_relevance()


@pytest.mark.parametrize("seed", range(25))
class TestTopKDagEqualsMatch:
    def test_dag_engine(self, seed):
        g, q, ctx = _case(seed, cyclic=False)
        if not q.is_dag():
            pytest.skip("pattern not a DAG")
        oracle = match_baseline(q, g, 3, context=ctx)
        result = top_k_dag(q, g, 3)
        assert _true_sum(ctx, result.matches) == oracle.total_relevance()

    def test_dag_engine_without_presimulation(self, seed):
        g, q, ctx = _case(seed, cyclic=False)
        if not q.is_dag():
            pytest.skip("pattern not a DAG")
        oracle = match_baseline(q, g, 3, context=ctx)
        result = top_k_dag(q, g, 3, presimulate=False)
        assert _true_sum(ctx, result.matches) == oracle.total_relevance()
