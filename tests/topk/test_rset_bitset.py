"""Property suite: packed-bitset relevant sets ≡ the dict/set oracle.

The engine's group relevant sets exist in two representations: the
reference one (one Python set per group root, deltas drained one posting
at a time) and the packed one (members interned into big-int bitsets,
postings coalesced per target root and flushed in one topological pass
over the group DAG).  This suite pins their equivalence on randomized
cyclic patterns and randomized confirmation orders:

* engines differing only in ``rset_bitset`` are deterministic twins —
  identical matches, scores, and the full per-pair vector ``v.T``
  (status, relevant set, cardinality, finalisation flag) — across the
  whole (use_csr × rset_bitset) toggle grid, including union-find group
  merges mid-flood (cyclic patterns collapse groups while deltas are
  still pending);
* group versions are monotone per root, rset growth always bumps them,
  and multi-group merges stamp the surviving root — on BOTH
  representations (checked live by an instrumented engine subclass);
* the public ``partial_relevant`` boundary hands out immutable
  snapshots on both paths: caller-side mutation raises and cannot
  corrupt group state.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import csr
from repro.topk.engine import CONFIRMED, TopKEngine
from repro.topk.policies import RelevancePolicy
from repro.topk.selection import GreedySelection, RandomSelection

from tests.conftest import make_random_graph
from tests.test_csr_equivalence import rich_random_graph, rich_random_pattern
from tests.topk.test_scc_incremental import cyclic_pattern

pytestmark = pytest.mark.skipif(not csr.available(), reason="numpy unavailable")

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

LABELS = "AB"


class VersionCheckedEngine(TopKEngine):
    """Engine twin asserting version monotonicity at every rset event."""

    def _flush_deltas(self):
        before_ver = list(self._g_version)
        before_bits = list(self._g_bits)
        super()._flush_deltas()
        for g, prior in enumerate(before_ver):
            assert self._g_version[g] >= prior, "version went backwards"
            if g < len(before_bits) and self._g_bits[g] != before_bits[g]:
                assert self._g_version[g] > prior, "rset grew without a bump"

    def _apply_delta(self, gid, delta):
        root = self._find(gid)
        before_ver = self._g_version[root]
        before = set(self._g_set[root])
        super()._apply_delta(gid, delta)
        root = self._find(root)
        assert self._g_version[root] >= before_ver
        if self._g_set[root] != before:
            assert self._g_version[root] > before_ver, "rset grew without a bump"

    def _merge_groups(self, comp, gids):
        target = min(gids)
        before_ver = self._g_version[target]
        super()._merge_groups(comp, gids)
        if len(gids) > 1:
            root = self._find(target)
            assert self._g_version[root] > before_ver, "merge did not stamp root"


def build_engine(
    pattern, graph, k=3, use_csr=True, rset_bitset=True, sel_seed=None,
    batch_size=None, engine_cls=TopKEngine,
):
    strategy = GreedySelection() if sel_seed is None else RandomSelection(sel_seed)
    engine = engine_cls(
        pattern,
        graph,
        k,
        policy=RelevancePolicy(),
        strategy=strategy,
        batch_size=batch_size,
        use_csr=use_csr,
        rset_bitset=rset_bitset,
    )
    result = engine.run()
    return engine, result


def assert_pair_states_equal(pattern, engine_a, engine_b):
    for u in pattern.nodes():
        for v in engine_a.candidates.lists[u]:
            assert engine_a.debug_state(u, v) == engine_b.debug_state(u, v)


class TestDeterministicTwins:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_full_toggle_grid_agrees(self, seed):
        """All four (use_csr × rset_bitset) arms are deterministic twins."""
        graph = rich_random_graph(seed)
        pattern = rich_random_pattern(seed + 1, cyclic=True)
        engines = [
            build_engine(pattern, graph, use_csr=use_csr, rset_bitset=bitset)
            for use_csr in (True, False)
            for bitset in (True, False)
        ]
        (ref_engine, ref), rest = engines[0], engines[1:]
        for engine, result in rest:
            assert result.matches == ref.matches
            assert result.scores == ref.scores
            if not ref_engine._infeasible:
                assert_pair_states_equal(pattern, ref_engine, engine)

    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        sel_seed=st.integers(min_value=0, max_value=50),
        batch_size=st.sampled_from([1, 2, None]),
    )
    @SETTINGS
    def test_randomized_confirmation_orders_twin(self, seed, sel_seed, batch_size):
        """Random seeding + tiny batches permute the confirmation/merge
        order, so groups collapse while deltas are still in flight."""
        graph = make_random_graph(seed, num_nodes=14, num_edges=34, labels=LABELS)
        pattern = cyclic_pattern(seed + 3)
        bit_engine, bit = build_engine(
            pattern, graph, rset_bitset=True, sel_seed=sel_seed, batch_size=batch_size
        )
        set_engine, ref = build_engine(
            pattern, graph, rset_bitset=False, sel_seed=sel_seed, batch_size=batch_size
        )
        assert bit.matches == ref.matches
        assert bit.scores == ref.scores
        if not bit_engine._infeasible:
            assert_pair_states_equal(pattern, bit_engine, set_engine)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_rset_contents_and_cardinalities_match(self, seed):
        """Per-pair: packed rset decodes to the oracle set, |R| matches."""
        graph = make_random_graph(seed, num_nodes=14, num_edges=34, labels=LABELS)
        pattern = cyclic_pattern(seed + 11)
        bit_engine, _ = build_engine(pattern, graph, rset_bitset=True)
        set_engine, _ = build_engine(pattern, graph, rset_bitset=False)
        if bit_engine._infeasible:
            return
        for u in pattern.nodes():
            for v in bit_engine.candidates.lists[u]:
                pid = bit_engine._pid_of[u][v]
                bit_rset = bit_engine.rset_of(pid)
                set_rset = set_engine.rset_of(set_engine._pid_of[u][v])
                assert set(bit_rset) == set(set_rset)
                assert len(bit_rset) == len(set_rset)
                assert bit_engine.lower_value(pid) == set_engine.lower_value(
                    set_engine._pid_of[u][v]
                )


class TestVersionsMonotone:
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        bitset=st.booleans(),
    )
    @SETTINGS
    def test_versions_monotone_under_flood(self, seed, bitset):
        """Every rset change bumps the root's version; never backwards."""
        graph = make_random_graph(seed, num_nodes=14, num_edges=34, labels=LABELS)
        pattern = cyclic_pattern(seed + 7)
        engine, _ = build_engine(
            pattern, graph, rset_bitset=bitset, engine_cls=VersionCheckedEngine
        )
        if engine._infeasible:
            return
        # Versions never exceed the clock, and confirmed groups carry one.
        for pid, gid in enumerate(engine._group_of):
            if gid < 0:
                continue
            root = engine._find(gid)
            assert 0 <= engine._g_version[root] <= engine._clock


class TestImmutableViews:
    def _confirmed_pid(self, engine):
        for pid, status in enumerate(engine._status):
            if status == CONFIRMED and engine.rset_of(pid):
                return pid
        return None

    @pytest.mark.parametrize("bitset", [True, False])
    def test_partial_relevant_is_immutable(self, bitset):
        graph = make_random_graph(3, num_nodes=14, num_edges=34, labels=LABELS)
        pattern = cyclic_pattern(5)
        engine, _ = build_engine(pattern, graph, rset_bitset=bitset)
        if engine._infeasible:
            pytest.skip("infeasible draw")
        pid = self._confirmed_pid(engine)
        if pid is None:
            pytest.skip("no confirmed nonempty rset")
        view = engine.partial_relevant(pid)
        before = set(view)
        before_state = engine.debug_state(engine._pair_u[pid], engine._pair_v[pid])
        # No mutating API: add/discard/update must not exist.
        for method in ("add", "discard", "update", "clear", "remove", "pop"):
            assert not hasattr(view, method)
        # Set algebra yields fresh objects, never touching group state.
        grown = view | {10_000}
        assert 10_000 not in view and 10_000 in grown
        shrunk = view - set(before)
        assert len(shrunk) == 0 and len(view) == len(before)
        after_state = engine.debug_state(engine._pair_u[pid], engine._pair_v[pid])
        assert after_state == before_state
        assert set(engine.partial_relevant(pid)) == before

    def test_bitset_view_is_a_frozen_snapshot(self):
        """A handed-out view must not follow later group growth."""
        interner = csr.NodeInterner([1, 2, 3, 5])
        view = csr.FrozenBitset(interner.mask_of([1, 3]), interner)
        assert set(view) == {1, 3}
        assert 2 not in view and -1 not in view and "x" not in view
        assert len(view) == 2 and bool(view)
        # frozenset interop: equality, hash, mixed algebra.
        assert view == frozenset({1, 3})
        assert hash(view) == hash(frozenset({1, 3}))
        assert view | {2} == {1, 2, 3}
        other = csr.FrozenBitset(interner.mask_of([3, 5]), interner)
        assert view & other == frozenset({3})
        assert view - other == {1}
        assert view ^ other == {1, 5}
        assert (view <= csr.FrozenBitset(interner.mask_of([1, 2, 3]), interner))
        assert not view.isdisjoint(other)
        assert view.isdisjoint(csr.FrozenBitset(0, interner))

    def test_view_survives_group_growth(self):
        """Snapshot semantics on the live engine: grow after read."""
        graph = make_random_graph(8, num_nodes=14, num_edges=34, labels=LABELS)
        pattern = cyclic_pattern(9)
        engine, _ = build_engine(pattern, graph, rset_bitset=True)
        if engine._infeasible:
            pytest.skip("infeasible draw")
        pid = self._confirmed_pid(engine)
        if pid is None:
            pytest.skip("no confirmed nonempty rset")
        view = engine.partial_relevant(pid)
        snapshot = set(view)
        root = engine._find(engine._group_of[pid])
        # Simulate a later delta landing on the group root.
        engine._g_bits[root] |= 1 << 0
        engine._g_card[root] = engine._g_bits[root].bit_count()
        engine._touch_rset(root)
        assert set(view) == snapshot  # the old view is frozen
        fresh = engine.partial_relevant(pid)
        assert fresh is not view
