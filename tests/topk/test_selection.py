"""Tests for seed selection strategies."""

from repro.topk.cyclic import top_k
from repro.topk.engine import TopKEngine
from repro.topk.policies import RelevancePolicy
from repro.topk.selection import (
    GreedySelection,
    RandomSelection,
    default_batch_size,
)


class TestDefaultBatchSize:
    def test_small_counts(self):
        assert default_batch_size(0) == 1
        assert default_batch_size(1) == 1
        assert default_batch_size(64) == 1

    def test_caps_rounds_at_64(self):
        assert default_batch_size(6400) == 100
        assert default_batch_size(65) == 2


class TestRandomSelection:
    def test_is_permutation(self, fig1):
        engine = TopKEngine(
            fig1.pattern, fig1.graph, 2, policy=RelevancePolicy(),
            strategy=RandomSelection(1),
        )
        assert sorted(engine._seeds) == sorted(set(engine._seeds))

    def test_seeded_determinism(self, fig1):
        runs = [
            top_k(fig1.pattern, fig1.graph, 2, optimized=False, seed=5).matches
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestGreedySelection:
    def test_orders_high_owner_first(self, fig1):
        engine = TopKEngine(
            fig1.pattern, fig1.graph, 2, policy=RelevancePolicy(),
            strategy=GreedySelection(),
        )
        scores = GreedySelection._owner_scores(engine)
        seeds = engine._seeds
        assert all(
            scores[seeds[i]] >= scores[seeds[i + 1]] - 1e-9
            for i in range(len(seeds) - 1)
        )

    def test_owner_scores_cover_all_pairs(self, fig1):
        engine = TopKEngine(fig1.pattern, fig1.graph, 2, policy=RelevancePolicy())
        scores = GreedySelection._owner_scores(engine)
        assert len(scores) == engine.stats.pairs_created
