"""Tests for seed selection strategies."""

from repro.topk.cyclic import top_k
from repro.topk.engine import TopKEngine
from repro.topk.policies import RelevancePolicy
from repro.topk.selection import (
    GreedySelection,
    RandomSelection,
    default_batch_size,
)


class TestDefaultBatchSize:
    def test_small_counts(self):
        assert default_batch_size(0) == 1
        assert default_batch_size(1) == 1
        assert default_batch_size(64) == 1

    def test_caps_rounds_at_64(self):
        assert default_batch_size(6400) == 100
        assert default_batch_size(65) == 2


class TestRandomSelection:
    def test_is_permutation(self, fig1):
        engine = TopKEngine(
            fig1.pattern, fig1.graph, 2, policy=RelevancePolicy(),
            strategy=RandomSelection(1),
        )
        assert sorted(engine._seeds) == sorted(set(engine._seeds))

    def test_seeded_determinism(self, fig1):
        runs = [
            top_k(fig1.pattern, fig1.graph, 2, optimized=False, seed=5).matches
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestGreedySelection:
    def test_orders_high_owner_first(self, fig1):
        engine = TopKEngine(
            fig1.pattern, fig1.graph, 2, policy=RelevancePolicy(),
            strategy=GreedySelection(),
        )
        scores = GreedySelection._owner_scores(engine)
        seeds = engine._seeds
        assert all(
            scores[seeds[i]] >= scores[seeds[i + 1]] - 1e-9
            for i in range(len(seeds) - 1)
        )

    def test_owner_scores_cover_all_pairs(self, fig1):
        engine = TopKEngine(fig1.pattern, fig1.graph, 2, policy=RelevancePolicy())
        scores = GreedySelection._owner_scores(engine)
        assert len(scores) == engine.stats.pairs_created

    def test_owner_scores_record_zero_bound_pairs(self):
        # Regression: ``if best:`` treated a legitimate 0.0 as falsy, so
        # pairs reachable only from zero-bound owners were never stored
        # by the sweep and the trailing setdefault masked the drop.  An
        # output candidate whose reachable region has no matches gets
        # ``v.h = 0``; its score — and its children's — must still be
        # explicitly recorded, on both the dict and the CSR sweep.
        from repro.graph.digraph import Graph
        from repro.patterns.pattern import pattern_from_edges

        g = Graph()
        a1 = g.add_node("A")
        a2 = g.add_node("A")
        b = g.add_node("B")
        g.add_edge(a1, b)
        g.add_edge(a2, b)
        # A leaf output node reaches no other query node, so every output
        # candidate carries the zero bound ``C_u = 0``.
        zero_bound = pattern_from_edges(["A"], [], output=0)
        for use_csr in (False, True):
            engine = TopKEngine(
                zero_bound, g, 1, policy=RelevancePolicy(),
                strategy=GreedySelection(), use_csr=use_csr,
            )
            scores = GreedySelection._owner_scores(engine)
            # Every pair carries an explicit entry, zero-bound included,
            # and the seed order falls back to the pid tie-break.
            assert len(scores) == engine.stats.pairs_created
            assert scores[engine.output_pid(a1)] == 0.0
            assert scores[engine.output_pid(a2)] == 0.0
            assert engine._seeds == sorted(engine._seeds)
            result = engine.run()
            assert result.matches == [a1]

    def test_dict_and_csr_sweeps_agree(self, fig1):
        dict_engine = TopKEngine(
            fig1.pattern, fig1.graph, 2, policy=RelevancePolicy(), use_csr=False
        )
        csr_engine = TopKEngine(
            fig1.pattern, fig1.graph, 2, policy=RelevancePolicy(), use_csr=True
        )
        assert GreedySelection._owner_scores(dict_engine) == GreedySelection._owner_scores(
            csr_engine
        )
        assert dict_engine._seeds == csr_engine._seeds
