"""MetricsRegistry: label sets, exporters, kind safety, ambience."""

from __future__ import annotations

import json

import pytest

from repro.errors import MatchingError
from repro.obs import (
    Counter,
    Histogram,
    MetricsRegistry,
    current_metrics,
    publish_engine_stats,
    use_metrics,
)
from repro.topk.result import EngineStats


class TestCounter:
    def test_label_sets_are_independent_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_runs_total", "runs")
        counter.inc(1, algorithm="TopK")
        counter.inc(2, algorithm="Match")
        counter.inc(1, algorithm="TopK")
        assert registry.value("repro_runs_total", algorithm="TopK") == 2.0
        assert registry.value("repro_runs_total", algorithm="Match") == 2.0
        assert registry.value("repro_runs_total", algorithm="absent") == 0.0

    def test_label_order_does_not_matter(self):
        counter = Counter("c", "")
        counter.inc(1, a="x", b="y")
        assert counter.value(b="y", a="x") == 1.0

    def test_negative_increment_raises(self):
        counter = Counter("c", "")
        with pytest.raises(MatchingError, match="cannot decrease"):
            counter.inc(-1)

    def test_get_or_create_returns_the_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", "first registered as counter")
        with pytest.raises(MatchingError, match="already registered"):
            registry.histogram("m")


class TestGauge:
    def test_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_depth", "queue depth")
        gauge.set(5, queue="deltas")
        gauge.inc(-2, queue="deltas")
        assert registry.value("repro_depth", queue="deltas") == 3.0


class TestHistogram:
    def test_buckets_are_cumulative(self):
        histogram = Histogram("h", "", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(6.05)
        assert snap["buckets"] == {"0.1": 1, "1": 3, "10": 4}

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(MatchingError, match="ascending"):
            Histogram("h", "", buckets=(1.0, 0.1))

    def test_unknown_series_snapshot_is_empty(self):
        histogram = Histogram("h", "")
        assert histogram.snapshot(kind="absent") == {
            "count": 0,
            "sum": 0.0,
            "buckets": {},
        }

    def test_registry_value_of_a_histogram_is_zero(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        assert registry.value("h") == 0.0


class TestPrometheusExporter:
    def test_counter_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_runs_total", "runs observed").inc(3, algorithm="TopK")
        text = registry.render_prometheus()
        assert "# HELP repro_runs_total runs observed\n" in text
        assert "# TYPE repro_runs_total counter\n" in text
        assert 'repro_runs_total{algorithm="TopK"} 3\n' in text

    def test_histogram_exposition_has_inf_sum_and_count(self):
        registry = MetricsRegistry()
        registry.histogram("repro_seconds", "latency", buckets=(0.1, 1.0)).observe(
            0.5, kind="edge"
        )
        lines = registry.render_prometheus().splitlines()
        assert 'repro_seconds_bucket{kind="edge",le="0.1"} 0' in lines
        assert 'repro_seconds_bucket{kind="edge",le="1"} 1' in lines
        assert 'repro_seconds_bucket{kind="edge",le="+Inf"} 1' in lines
        assert 'repro_seconds_sum{kind="edge"} 0.5' in lines
        assert 'repro_seconds_count{kind="edge"} 1' in lines

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestJsonExporter:
    def test_dump_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c", "counts").inc(2, mode="topk")
        registry.histogram("h", "times", buckets=(1.0,)).observe(0.5)
        payload = json.loads(registry.dump_json())
        assert payload["c"]["type"] == "counter"
        assert payload["c"]["samples"] == [
            {"labels": {"mode": "topk"}, "value": 2.0}
        ]
        assert payload["h"]["samples"][0]["count"] == 1

    def test_names_are_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z")
        registry.counter("a")
        assert registry.names() == ["a", "z"]


class TestAmbientSurface:
    def test_nothing_installed_by_default(self):
        assert current_metrics() is None

    def test_use_metrics_installs_and_restores(self):
        registry = MetricsRegistry()
        with use_metrics(registry) as installed:
            assert installed is registry
            assert current_metrics() is registry
        assert current_metrics() is None

    def test_nested_install_shadows_then_restores(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_metrics(outer):
            with use_metrics(inner):
                assert current_metrics() is inner
            assert current_metrics() is outer


class TestPublishEngineStats:
    def test_publishes_run_counters_and_elapsed(self):
        registry = MetricsRegistry()
        stats = EngineStats(
            batches=4,
            inspected_matches=7,
            deltas_applied=12,
            terminated_early=True,
            elapsed_seconds=0.25,
        )
        publish_engine_stats(registry, stats, "TopK")
        assert registry.value("repro_engine_runs_total", algorithm="TopK") == 1.0
        assert registry.value("repro_engine_batches_total", algorithm="TopK") == 4.0
        assert (
            registry.value("repro_engine_deltas_applied_total", algorithm="TopK")
            == 12.0
        )
        assert (
            registry.value("repro_engine_terminated_early_total", algorithm="TopK")
            == 1.0
        )
        elapsed = registry.get("repro_engine_elapsed_seconds")
        assert elapsed.snapshot(algorithm="TopK")["count"] == 1

    def test_zero_counters_create_no_series(self):
        registry = MetricsRegistry()
        publish_engine_stats(registry, EngineStats(), "Match")
        assert "repro_engine_batches_total" not in registry.names()
        assert "repro_engine_terminated_early_total" not in registry.names()
        assert registry.value("repro_engine_runs_total", algorithm="Match") == 1.0


class TestThreadSafety:
    """Regression coverage for the serving-pool merge path.

    The parent folds worker results back into ambient metrics from the
    batch epilogue while other sessions may be publishing concurrently;
    every read-modify-write on a series and every get-or-create in the
    registry must be atomic or increments are silently lost.
    """

    THREADS = 8
    ITERATIONS = 400

    def _hammer(self, fn):
        import threading

        start = threading.Barrier(self.THREADS)

        def worker():
            start.wait()
            for _ in range(self.ITERATIONS):
                fn()

        threads = [
            threading.Thread(target=worker) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_concurrent_counter_increments_are_not_lost(self):
        counter = Counter("repro_worker_queries_total", "")
        self._hammer(lambda: counter.inc(1, worker="0"))
        assert counter.value(worker="0") == self.THREADS * self.ITERATIONS

    def test_concurrent_gauge_increments_are_not_lost(self):
        from repro.obs import Gauge

        gauge = Gauge("repro_pool_inflight", "")
        self._hammer(lambda: gauge.inc(1))
        assert gauge.value() == self.THREADS * self.ITERATIONS

    def test_concurrent_histogram_observations_are_not_lost(self):
        histogram = Histogram("repro_worker_dispatch_seconds", "")
        self._hammer(lambda: histogram.observe(0.25))
        snap = histogram.snapshot()
        assert snap["count"] == self.THREADS * self.ITERATIONS
        assert snap["sum"] == pytest.approx(
            0.25 * self.THREADS * self.ITERATIONS
        )

    def test_concurrent_get_or_create_yields_one_metric(self):
        registry = MetricsRegistry()
        seen = []

        def create_and_bump():
            counter = registry.counter("repro_races_total", "")
            seen.append(counter)
            counter.inc(1)

        self._hammer(create_and_bump)
        assert len(set(map(id, seen))) == 1
        assert registry.value("repro_races_total") == (
            self.THREADS * self.ITERATIONS
        )
