"""EngineStats aggregation: as_dict flattening and merge semantics."""

from __future__ import annotations

from dataclasses import fields

from repro.topk.result import EngineStats


class TestAsDict:
    def test_covers_every_field(self):
        stats = EngineStats(batches=3, elapsed_seconds=0.5)
        payload = stats.as_dict()
        assert set(payload) == {f.name for f in fields(EngineStats)}
        assert payload["batches"] == 3
        assert payload["elapsed_seconds"] == 0.5
        assert payload["total_matches"] is None

    def test_is_a_snapshot_not_a_view(self):
        stats = EngineStats()
        payload = stats.as_dict()
        stats.batches = 9
        assert payload["batches"] == 0


class TestMerge:
    def test_integer_counters_add(self):
        a = EngineStats(batches=2, deltas_applied=5, scc_merges=1)
        b = EngineStats(batches=3, deltas_applied=7, paircsr_hits=4)
        merged = a.merge(b)
        assert merged is a
        assert a.batches == 5
        assert a.deltas_applied == 12
        assert a.scc_merges == 1
        assert a.paircsr_hits == 4

    def test_elapsed_adds_and_terminated_early_ors(self):
        a = EngineStats(elapsed_seconds=0.25, terminated_early=False)
        a.merge(EngineStats(elapsed_seconds=0.5, terminated_early=True))
        assert a.elapsed_seconds == 0.75
        assert a.terminated_early is True
        a.merge(EngineStats(terminated_early=False))
        assert a.terminated_early is True  # never un-sets

    def test_total_matches_adds_when_both_known(self):
        a = EngineStats(total_matches=10)
        a.merge(EngineStats(total_matches=5))
        assert a.total_matches == 15

    def test_unknown_total_matches_poisons_the_sum(self):
        a = EngineStats(total_matches=10)
        a.merge(EngineStats(total_matches=None))
        assert a.total_matches is None
        # ...and stays poisoned even when later runs know theirs.
        a.merge(EngineStats(total_matches=3))
        assert a.total_matches is None

    def test_merge_accumulates_across_many_runs(self):
        total = EngineStats()
        for i in range(4):
            total.merge(EngineStats(inspected_matches=i, elapsed_seconds=0.1))
        assert total.inspected_matches == 0 + 1 + 2 + 3
        assert round(total.elapsed_seconds, 6) == 0.4
