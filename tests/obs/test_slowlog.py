"""Slow-query log: threshold resolution and the emitted WARNING line."""

from __future__ import annotations

import logging

import pytest

from repro.errors import MatchingError
from repro.obs import SLOW_QUERY_ENV, maybe_log_slow_query, slow_query_threshold
from repro.session.config import ExecutionConfig
from tests.conftest import make_random_pattern


@pytest.fixture()
def pattern():
    return make_random_pattern(0, num_nodes=4, extra_edges=2)


class TestThresholdResolution:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(SLOW_QUERY_ENV, raising=False)
        assert slow_query_threshold(None) is None
        assert slow_query_threshold(ExecutionConfig()) is None

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv(SLOW_QUERY_ENV, "0.5")
        assert slow_query_threshold(None) == 0.5
        assert slow_query_threshold(ExecutionConfig()) == 0.5

    def test_config_beats_environment(self, monkeypatch):
        monkeypatch.setenv(SLOW_QUERY_ENV, "0.5")
        assert slow_query_threshold(ExecutionConfig(slow_query_seconds=2.0)) == 2.0

    def test_garbage_environment_values_disable(self, monkeypatch):
        for raw in ("not-a-number", "", "-1", "0"):
            monkeypatch.setenv(SLOW_QUERY_ENV, raw)
            assert slow_query_threshold(None) is None

    def test_config_rejects_non_positive_threshold(self):
        with pytest.raises(MatchingError, match="slow_query_seconds"):
            ExecutionConfig(slow_query_seconds=0.0)
        with pytest.raises(MatchingError, match="slow_query_seconds"):
            ExecutionConfig(slow_query_seconds=-1.0)


class TestLogging:
    def test_breach_emits_one_warning(self, pattern, caplog, monkeypatch):
        monkeypatch.delenv(SLOW_QUERY_ENV, raising=False)
        config = ExecutionConfig(slow_query_seconds=0.1)
        with caplog.at_level(logging.WARNING, logger="repro.slowquery"):
            emitted = maybe_log_slow_query("TopK", pattern, 10, 0.25, config)
        assert emitted is True
        assert len(caplog.records) == 1
        message = caplog.records[0].getMessage()
        assert "slow query" in message
        assert "TopK" in message and "k=10" in message
        shape = pattern.shape
        assert f"|Q|=({shape[0]},{shape[1]})" in message

    def test_below_threshold_is_silent(self, pattern, caplog, monkeypatch):
        monkeypatch.delenv(SLOW_QUERY_ENV, raising=False)
        config = ExecutionConfig(slow_query_seconds=1.0)
        with caplog.at_level(logging.WARNING, logger="repro.slowquery"):
            emitted = maybe_log_slow_query("TopK", pattern, 10, 0.25, config)
        assert emitted is False
        assert not caplog.records

    def test_no_threshold_is_silent(self, pattern, caplog, monkeypatch):
        monkeypatch.delenv(SLOW_QUERY_ENV, raising=False)
        with caplog.at_level(logging.WARNING, logger="repro.slowquery"):
            assert maybe_log_slow_query("TopK", pattern, 10, 100.0) is False
        assert not caplog.records

    def test_environment_threshold_without_config(self, pattern, caplog, monkeypatch):
        monkeypatch.setenv(SLOW_QUERY_ENV, "0.05")
        with caplog.at_level(logging.WARNING, logger="repro.slowquery"):
            assert maybe_log_slow_query("Match", pattern, 5, 0.1) is True
        assert "Match" in caplog.records[0].getMessage()
