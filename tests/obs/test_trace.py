"""Tracer: nesting, exception safety, events, export round-trips."""

from __future__ import annotations

import io

import pytest

from repro.obs import (
    TRACE_FORMAT,
    Tracer,
    current_tracer,
    load_jsonl,
    span_event,
    trace,
    use_tracer,
)


class TestNesting:
    def test_parent_ids_and_depth_follow_call_structure(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert outer.parent_id is None and outer.depth == 0
        assert middle.parent_id == outer.span_id and middle.depth == 1
        assert inner.parent_id == middle.span_id and inner.depth == 2

    def test_siblings_share_a_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == outer.span_id
        assert a.depth == b.depth == 1

    def test_span_ids_are_unique_and_ordered(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("phase"):
                pass
        assert [s.span_id for s in tracer.spans] == [0, 1, 2]

    def test_current_span_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current_span is None
        with tracer.span("outer") as outer:
            assert tracer.current_span is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span is inner
            assert tracer.current_span is outer
        assert tracer.current_span is None

    def test_durations_are_set_on_close(self):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        assert tracer.spans[0].duration_seconds >= 0.0


class TestExceptionSafety:
    def test_exception_is_tagged_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing"):
                raise ValueError("boom")
        span = tracer.spans[0]
        assert span.status == "error"
        assert span.error_type == "ValueError"
        assert span.error_message == "boom"
        assert span.duration_seconds is not None

    def test_stack_unwinds_past_a_failing_inner_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("inner failure")
        assert tracer.current_span is None
        inner = next(s for s in tracer.spans if s.name == "inner")
        outer = next(s for s in tracer.spans if s.name == "outer")
        assert inner.status == "error"
        assert outer.status == "error"  # propagates through the outer exit


class TestEvents:
    def test_event_attaches_to_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("scc.merge", comp=3)
        inner = next(s for s in tracer.spans if s.name == "inner")
        outer = next(s for s in tracer.spans if s.name == "outer")
        assert [e.name for e in inner.events] == ["scc.merge"]
        assert inner.events[0].attrs == {"comp": 3}
        assert not outer.events

    def test_event_without_open_span_is_dropped(self):
        tracer = Tracer()
        tracer.event("orphan")
        assert tracer.spans == []

    def test_ambient_span_event_requires_a_tracer(self):
        span_event("no-op", detail=1)  # nothing installed: must not raise


class TestAmbientSurface:
    def test_trace_without_tracer_yields_none(self):
        assert current_tracer() is None
        with trace("anything", attr=1) as span:
            assert span is None

    def test_trace_with_tracer_yields_mutable_span(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace("phase", k=10) as span:
                assert span is not None
                span.set_attr(rounds=4)
        assert tracer.spans[0].attrs == {"k": 10, "rounds": 4}

    def test_use_tracer_restores_previous_state(self):
        tracer = Tracer()
        with use_tracer(tracer) as installed:
            assert installed is tracer
            assert current_tracer() is tracer
        assert current_tracer() is None


class TestPhaseTotals:
    def test_counts_and_sums_finished_spans_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("engine.batch"):
                pass
        with tracer.span("engine.run"):
            pass
        totals = tracer.phase_totals()
        assert totals["engine.batch"]["count"] == 3
        assert totals["engine.run"]["count"] == 1
        assert totals["engine.batch"]["total_seconds"] >= 0.0

    def test_open_spans_are_excluded(self):
        tracer = Tracer()
        tracer.span("never-closed")
        assert "never-closed" not in tracer.phase_totals()


class TestExport:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("outer", algorithm="TopK"):
            with tracer.span("inner"):
                tracer.event("tick", n=1)
        return tracer

    def test_jsonl_round_trip_via_file(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        spans = load_jsonl(path)
        assert [s["name"] for s in spans] == ["outer", "inner"]
        assert all(s["format"] == TRACE_FORMAT for s in spans)
        inner = spans[1]
        assert inner["parent_id"] == spans[0]["span_id"]
        assert inner["events"][0]["name"] == "tick"

    def test_jsonl_round_trip_via_stream(self):
        tracer = self._traced()
        buffer = io.StringIO()
        assert tracer.export_jsonl(buffer) == 2
        spans = load_jsonl(buffer.getvalue().splitlines())
        assert len(spans) == 2

    def test_load_rejects_foreign_lines(self):
        with pytest.raises(ValueError, match=TRACE_FORMAT):
            load_jsonl(['{"format": "something-else", "name": "x"}'])

    def test_load_skips_blank_lines(self):
        tracer = self._traced()
        buffer = io.StringIO()
        tracer.export_jsonl(buffer)
        lines = ["", *buffer.getvalue().splitlines(), "   "]
        assert len(load_jsonl(lines)) == 2

    def test_empty_tracer_exports_nothing(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert Tracer().export_jsonl(path) == 0
        assert path.read_text() == ""
        assert load_jsonl(path) == []
