"""Regression: the batch loop is trace-free when tracing is disabled.

Before PR 7 the engine called ``trace("engine.batch", ...)`` once per
propagation round — a contextvar read plus a kwargs dict per batch even
with tracing off, despite ``self._tracer`` being pre-resolved at init
for exactly this purpose.  ``run()`` now guards the span on the
init-resolved tracer, so the number of ``trace()`` calls per run is a
constant, independent of how many batches the workload takes.
"""

from __future__ import annotations

import repro.topk.engine as engine_mod
from repro.obs import Tracer, use_tracer
from repro.topk.cyclic import top_k


def _count_trace_calls(monkeypatch):
    calls: list[str] = []
    real_trace = engine_mod.trace

    def counting(name, **attrs):
        calls.append(name)
        return real_trace(name, **attrs)

    monkeypatch.setattr(engine_mod, "trace", counting)
    return calls


class TestDisabledTracingCost:
    def test_trace_calls_do_not_scale_with_batches(self, fig1, monkeypatch):
        calls = _count_trace_calls(monkeypatch)

        many = top_k(fig1.pattern, fig1.graph, 2, batch_size=1)
        per_batch_run = list(calls)
        calls.clear()
        one = top_k(fig1.pattern, fig1.graph, 2, batch_size=10_000)
        single_batch_run = list(calls)

        assert many.stats.batches > 1 >= one.stats.batches
        # Same hooks either way: setup spans only, nothing per batch.
        assert per_batch_run == single_batch_run
        assert "engine.batch" not in per_batch_run

    def test_enabled_tracing_still_spans_every_batch(self, fig1):
        tracer = Tracer()
        with use_tracer(tracer):
            result = top_k(fig1.pattern, fig1.graph, 2, batch_size=1)
        batch_spans = [s for s in tracer.spans if s.name == "engine.batch"]
        assert len(batch_spans) == result.stats.batches > 1
        assert [s.attrs["index"] for s in batch_spans] == list(
            range(result.stats.batches)
        )
