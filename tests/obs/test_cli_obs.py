"""CLI observability surfaces: --trace, --slow-query, the metrics command."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graph.io import load_json
from repro.obs import TRACE_FORMAT, load_jsonl
from repro.patterns.io import save_pattern
from repro.workloads.pattern_gen import random_dag_pattern


@pytest.fixture()
def graph_file(tmp_path):
    path = tmp_path / "g.json"
    assert main(["generate", "--dataset", "synthetic", "--nodes", "300",
                 "--edges", "1200", "--out", str(path)]) == 0
    return path


@pytest.fixture()
def pattern_file(tmp_path, graph_file):
    g = load_json(graph_file)
    pattern = random_dag_pattern(g, 3, 2, seed=1)
    path = tmp_path / "q.json"
    save_pattern(pattern, path)
    return path


class TestMatchTrace:
    def test_writes_a_parseable_trace(self, tmp_path, graph_file, pattern_file, capsys):
        trace_file = tmp_path / "trace.jsonl"
        assert main(["match", "--graph", str(graph_file),
                     "--pattern", str(pattern_file), "--k", "3",
                     "--trace", str(trace_file)]) == 0
        spans = load_jsonl(trace_file)
        assert spans
        assert all(s["format"] == TRACE_FORMAT for s in spans)
        assert any(s["name"] == "engine.run" for s in spans)
        err = capsys.readouterr().err
        assert f"wrote {len(spans)} spans" in err

    def test_json_stdout_stays_parseable_alongside_trace(
        self, tmp_path, graph_file, pattern_file, capsys
    ):
        trace_file = tmp_path / "trace.jsonl"
        assert main(["match", "--graph", str(graph_file),
                     "--pattern", str(pattern_file), "--k", "3",
                     "--json", "--trace", str(trace_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "matches" in payload


class TestBatchObservability:
    def _queries_file(self, tmp_path, pattern_file):
        payload = {
            "format": "repro-batch-json",
            "queries": [
                {"pattern": pattern_file.name, "k": 2},
                {"pattern": pattern_file.name, "k": 3},
            ],
        }
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(payload))
        return path

    def test_trace_and_slow_query_flags(self, tmp_path, graph_file, pattern_file):
        trace_file = tmp_path / "batch-trace.jsonl"
        queries_file = self._queries_file(tmp_path, pattern_file)
        assert main(["batch", "--graph", str(graph_file),
                     "--queries", str(queries_file),
                     "--trace", str(trace_file),
                     "--slow-query", "30"]) == 0
        names = {s["name"] for s in load_jsonl(trace_file)}
        assert "session.run_batch" in names
        assert "session.query" in names


class TestMetricsCommand:
    def test_prometheus_output(self, graph_file, pattern_file, capsys):
        assert main(["metrics", "--graph", str(graph_file),
                     "--pattern", str(pattern_file), "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_runs_total counter" in out
        assert "repro_engine_elapsed_seconds_bucket" in out

    def test_json_output_to_file(self, tmp_path, graph_file, pattern_file):
        out_file = tmp_path / "metrics.json"
        assert main(["metrics", "--graph", str(graph_file),
                     "--pattern", str(pattern_file), "--k", "3",
                     "--format", "json", "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["repro_engine_runs_total"]["type"] == "counter"

    def test_repeat_accumulates_runs(self, graph_file, pattern_file, capsys):
        assert main(["metrics", "--graph", str(graph_file),
                     "--pattern", str(pattern_file), "--k", "3",
                     "--repeat", "3", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        samples = payload["repro_engine_runs_total"]["samples"]
        assert sum(s["value"] for s in samples) == 3
