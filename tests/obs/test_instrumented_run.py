"""End-to-end: real runs reconcile spans, metrics and EngineStats."""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    default_metrics,
    default_tracer,
    instrumentation,
    load_jsonl,
    reset_defaults,
    use_metrics,
    use_tracer,
)
from repro.session import MatchSession, QuerySpec
from repro.session.config import ExecutionConfig
from repro.topk.cyclic import top_k


@pytest.fixture()
def clean_defaults():
    reset_defaults()
    yield
    reset_defaults()


class TestTracedEngineRun:
    def test_batch_spans_reconcile_with_engine_stats(self, fig1):
        tracer = Tracer()
        with use_tracer(tracer):
            result = top_k(fig1.pattern, fig1.graph, 2)
        totals = tracer.phase_totals()
        assert totals["engine.run"]["count"] == 1
        assert totals["engine.batch"]["count"] == result.stats.batches
        run_span = next(s for s in tracer.spans if s.name == "engine.run")
        assert run_span.attrs["batches"] == result.stats.batches
        assert run_span.attrs["inspected_matches"] == result.stats.inspected_matches

    def test_init_phases_are_children_of_nothing_but_ordered(self, fig1):
        tracer = Tracer()
        with use_tracer(tracer):
            top_k(fig1.pattern, fig1.graph, 2)
        names = [s.name for s in tracer.spans]
        assert "engine.candidates" in names
        assert "engine.build_structures" in names
        assert names.index("engine.candidates") < names.index("engine.run")

    def test_fixpoint_rounds_attr_matches_rounds_counter(self, fig1):
        tracer = Tracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_metrics(registry):
            top_k(fig1.pattern, fig1.graph, 2)
        fixpoints = [s for s in tracer.spans if s.name == "simulation.fixpoint"]
        assert fixpoints
        for path in {s.attrs["path"] for s in fixpoints}:
            assert registry.value(
                "repro_simulation_fixpoints_total", path=path
            ) == len([s for s in fixpoints if s.attrs["path"] == path])
        csr_rounds = sum(
            s.attrs.get("rounds", 0) for s in fixpoints if s.attrs["path"] == "csr"
        )
        assert registry.value("repro_simulation_rounds_total", path="csr") == csr_rounds

    def test_trace_export_round_trips_through_jsonl(self, fig1, tmp_path):
        tracer = Tracer()
        with use_tracer(tracer):
            top_k(fig1.pattern, fig1.graph, 2)
        path = tmp_path / "run.jsonl"
        count = tracer.export_jsonl(path)
        spans = load_jsonl(path)
        assert len(spans) == count == len(tracer.spans)
        assert {s["name"] for s in spans} >= {"engine.run", "engine.batch"}

    def test_disabled_run_records_nothing(self, fig1):
        tracer = Tracer()
        top_k(fig1.pattern, fig1.graph, 2)  # nothing ambient
        assert tracer.spans == []


class TestPublishedMetrics:
    def test_engine_counters_match_result_stats(self, fig1):
        registry = MetricsRegistry()
        with use_metrics(registry):
            result = top_k(fig1.pattern, fig1.graph, 2)
        stats = result.stats
        assert registry.value("repro_engine_runs_total", algorithm="TopK") == 1.0
        assert (
            registry.value("repro_engine_batches_total", algorithm="TopK")
            == stats.batches
        )
        assert (
            registry.value("repro_engine_inspected_matches_total", algorithm="TopK")
            == stats.inspected_matches
        )
        elapsed = registry.get("repro_engine_elapsed_seconds")
        assert elapsed.snapshot(algorithm="TopK")["count"] == 1

    def test_session_batch_populates_cache_and_fixpoint_series(self, fig1):
        registry = MetricsRegistry()
        specs = [QuerySpec(fig1.pattern, k=2), QuerySpec(fig1.pattern, k=3)]
        with use_metrics(registry):
            with MatchSession(fig1.graph) as session:
                session.run_batch(specs)
        text = registry.render_prometheus()
        assert "repro_session_cache_total" in text
        assert "repro_simulation_fixpoints_total" in text
        # The second query reuses the first one's pattern artifacts.
        hits = sum(
            value
            for labels, value in registry.get("repro_session_cache_total").samples()
            if labels["outcome"] == "hit"
        )
        assert hits > 0


class TestConfigDrivenInstrumentation:
    def test_flags_off_is_a_shared_noop(self):
        cm = instrumentation(ExecutionConfig())
        assert cm is instrumentation(None)

    def test_config_installs_process_defaults(self, fig1, clean_defaults):
        config = ExecutionConfig(trace=True, metrics=True)
        result = top_k(fig1.pattern, fig1.graph, 2, config=config)
        tracer = default_tracer()
        registry = default_metrics()
        assert any(s.name == "engine.run" for s in tracer.spans)
        assert registry.value("repro_engine_runs_total", algorithm="TopK") == 1.0
        assert result.matches  # instrumentation never perturbs the answer

    def test_ambient_collectors_are_never_shadowed(self, fig1, clean_defaults):
        explicit = MetricsRegistry()
        config = ExecutionConfig(metrics=True)
        with use_metrics(explicit):
            top_k(fig1.pattern, fig1.graph, 2, config=config)
        # The explicitly installed registry got the run; the process
        # default was never materialised on top of it.
        assert explicit.value("repro_engine_runs_total", algorithm="TopK") == 1.0
        assert default_metrics().value("repro_engine_runs_total", algorithm="TopK") == 0.0

    def test_traced_and_untraced_answers_agree(self, fig1):
        plain = top_k(fig1.pattern, fig1.graph, 2)
        tracer = Tracer()
        registry = MetricsRegistry()
        with use_tracer(tracer), use_metrics(registry):
            traced = top_k(fig1.pattern, fig1.graph, 2)
        assert plain.matches == traced.matches
        assert plain.scores == traced.scores
