"""Round-trip tests for pattern JSON serialisation."""

import pytest

from repro.errors import PatternError
from repro.patterns.io import load_pattern, pattern_from_dict, pattern_to_dict, save_pattern
from repro.workloads.paper_queries import youtube_q1


class TestPatternJson:
    def test_roundtrip_structure(self, fig1, tmp_path):
        path = tmp_path / "q.json"
        save_pattern(fig1.pattern, path)
        loaded = load_pattern(path)
        assert loaded.shape == fig1.pattern.shape
        assert loaded.output_node == fig1.pattern.output_node
        assert set(loaded.edges()) == set(fig1.pattern.edges())
        assert loaded.labels() == fig1.pattern.labels()

    def test_roundtrip_predicates(self, tmp_path):
        path = tmp_path / "q1.json"
        save_pattern(youtube_q1(), path)
        loaded = load_pattern(path)
        # The rate>2 condition must survive the round trip.
        from repro.graph.digraph import Graph

        g = Graph()
        good = g.add_node("music", rate=4.0, views=10)
        bad = g.add_node("music", rate=1.0, views=10)
        assert loaded.predicate(0).matches(g, good)
        assert not loaded.predicate(0).matches(g, bad)

    def test_hand_written_document(self):
        pattern = pattern_from_dict(
            {
                "format": "repro-pattern-json",
                "nodes": [
                    {"name": "mgr", "label": "Manager", "output": True},
                    {"name": "dev", "label": "Dev"},
                ],
                "edges": [["mgr", "dev"]],
            }
        )
        assert pattern.shape == (2, 1)
        assert pattern.label(0) == "Manager"

    def test_foreign_document_rejected(self):
        with pytest.raises(PatternError):
            pattern_from_dict({"format": "xml"})

    def test_dict_form(self, fig1):
        payload = pattern_to_dict(fig1.pattern)
        assert payload["format"] == "repro-pattern-json"
        assert payload["nodes"][0]["output"] is True
