"""Tests for the Pattern class and its structural analysis."""

import pytest

from repro.errors import PatternError
from repro.patterns.pattern import Pattern, pattern_from_edges


@pytest.fixture()
def diamond():
    # 0 -> 1 -> 3, 0 -> 2 -> 3 (DAG), output 0
    return pattern_from_edges(["A", "B", "C", "D"], [(0, 1), (0, 2), (1, 3), (2, 3)], 0)


@pytest.fixture()
def cyclic():
    # 0 -> 1 <-> 2 -> 3
    return pattern_from_edges(["A", "B", "C", "D"], [(0, 1), (1, 2), (2, 1), (2, 3)], 0)


class TestConstruction:
    def test_shape_and_size(self, diamond):
        assert diamond.shape == (4, 4)
        assert diamond.size == 8

    def test_duplicate_edge_rejected(self, diamond):
        with pytest.raises(PatternError):
            diamond.add_edge(0, 1)

    def test_edge_to_unknown_node_rejected(self, diamond):
        with pytest.raises(PatternError):
            diamond.add_edge(0, 9)

    def test_output_node_single(self, diamond):
        assert diamond.output_node == 0

    def test_multiple_outputs_supported(self, diamond):
        diamond.set_output(0, 1)
        assert diamond.output_nodes == (0, 1)
        with pytest.raises(PatternError):
            _ = diamond.output_node

    def test_no_output_raises(self):
        p = Pattern()
        p.add_node("A")
        with pytest.raises(PatternError):
            _ = p.output_node

    def test_validate(self):
        p = Pattern()
        with pytest.raises(PatternError):
            p.validate()
        p.add_node("A")
        with pytest.raises(PatternError):
            p.validate()
        p.set_output(0)
        p.validate()

    def test_labels_list(self, diamond):
        assert diamond.labels() == ["A", "B", "C", "D"]


class TestStructure:
    def test_is_dag(self, diamond, cyclic):
        assert diamond.is_dag()
        assert not cyclic.is_dag()

    def test_self_loop_makes_cyclic(self):
        p = pattern_from_edges(["A"], [], 0)
        p.add_edge(0, 0)
        assert not p.is_dag()

    def test_nontrivial_components(self, cyclic):
        comps = cyclic.analysis.nontrivial_components()
        assert len(comps) == 1
        assert sorted(cyclic.analysis.cond.components[comps[0]]) == [1, 2]

    def test_reachable_from_excludes_self_when_acyclic(self, diamond):
        assert diamond.analysis.reachable_from(0) == {1, 2, 3}

    def test_reachable_from_includes_self_on_cycle(self, cyclic):
        assert 1 in cyclic.analysis.reachable_from(1)

    def test_analysis_cache_invalidated_on_mutation(self, diamond):
        first = diamond.analysis
        diamond.add_node("E")
        assert diamond.analysis is not first


class TestMaxPathLengths:
    def test_dag_depths(self, diamond):
        depths = diamond.analysis.max_path_lengths_from(0)
        assert depths == {0: 0, 1: 1, 2: 1, 3: 2}

    def test_cycle_targets_are_unbounded(self, cyclic):
        depths = cyclic.analysis.max_path_lengths_from(0)
        assert depths[1] is None and depths[2] is None and depths[3] is None

    def test_targets_before_cycle_stay_bounded(self):
        # 0 -> 1 -> (2 <-> 3); node 1 is reached only acyclically.
        p = pattern_from_edges(["A", "B", "C", "D"], [(0, 1), (1, 2), (2, 3), (3, 2)], 0)
        depths = p.analysis.max_path_lengths_from(0)
        assert depths[1] == 1
        assert depths[2] is None and depths[3] is None

    def test_longest_not_shortest_path(self):
        # 0 -> 3 direct and 0 -> 1 -> 2 -> 3: longest path to 3 is 3.
        p = pattern_from_edges(["A", "B", "C", "D"], [(0, 3), (0, 1), (1, 2), (2, 3)], 0)
        assert p.analysis.max_path_lengths_from(0)[3] == 3

    def test_max_depth_from(self, diamond, cyclic):
        assert diamond.analysis.max_depth_from(0) == 2
        assert cyclic.analysis.max_depth_from(0) is None
