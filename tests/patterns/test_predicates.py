"""Tests for attribute predicates and the condition parser."""

import pytest

from repro.errors import PatternError
from repro.graph.digraph import Graph
from repro.patterns.predicates import (
    AttrCompare,
    AttrIn,
    Negate,
    all_of,
    any_of,
    parse_conditions,
)


@pytest.fixture()
def video_graph():
    g = Graph()
    g.add_node("music", rate=4.5, views=9000, category="music")
    g.add_node("music", rate=1.0, views=100)
    return g


class TestAttrCompare:
    def test_equality(self, video_graph):
        assert AttrCompare("category", "==", "music").matches(video_graph, 0)

    def test_numeric_comparison(self, video_graph):
        assert AttrCompare("rate", ">", 2).matches(video_graph, 0)
        assert not AttrCompare("rate", ">", 2).matches(video_graph, 1)

    @pytest.mark.parametrize("op,expected", [("!=", True), (">=", True), ("<", False), ("<=", False)])
    def test_all_operators(self, video_graph, op, expected):
        assert AttrCompare("views", op, 5000).matches(video_graph, 0) is expected

    def test_missing_attribute_never_matches(self, video_graph):
        assert not AttrCompare("category", "==", "music").matches(video_graph, 1)

    def test_type_mismatch_never_matches(self, video_graph):
        assert not AttrCompare("category", ">", 5).matches(video_graph, 0)

    def test_unknown_operator_rejected(self):
        with pytest.raises(PatternError):
            AttrCompare("x", "~", 1)


class TestCombinators:
    def test_all_of(self, video_graph):
        pred = all_of(AttrCompare("rate", ">", 2), AttrCompare("views", ">", 5000))
        assert pred.matches(video_graph, 0)
        assert not pred.matches(video_graph, 1)

    def test_empty_all_of_is_true(self, video_graph):
        assert all_of().matches(video_graph, 1)

    def test_any_of(self, video_graph):
        pred = any_of(AttrCompare("rate", ">", 3), AttrCompare("views", "<", 500))
        assert pred.matches(video_graph, 0)
        assert pred.matches(video_graph, 1)

    def test_empty_any_of_is_false(self, video_graph):
        assert not any_of().matches(video_graph, 0)

    def test_negate(self, video_graph):
        assert Negate(AttrCompare("rate", ">", 2)).matches(video_graph, 1)

    def test_attr_in(self, video_graph):
        assert AttrIn("category", ("music", "film")).matches(video_graph, 0)
        assert not AttrIn("category", ("film",)).matches(video_graph, 0)


class TestParser:
    def test_paper_syntax(self, video_graph):
        pred = parse_conditions('category="music"; rate>2; views>5000')
        assert pred.matches(video_graph, 0)
        assert not pred.matches(video_graph, 1)

    def test_single_equals_is_equality(self):
        pred = parse_conditions("x=3")
        assert pred.parts[0].op == "=="

    def test_numeric_literals(self):
        parts = parse_conditions("a>2; b>=2.5").parts
        assert parts[0].value == 2 and isinstance(parts[0].value, int)
        assert parts[1].value == 2.5

    def test_bare_word_value(self):
        assert parse_conditions("group=Book").parts[0].value == "Book"

    def test_comma_separator(self):
        assert len(parse_conditions("a>1, b<2").parts) == 2

    def test_empty_chunks_skipped(self):
        assert len(parse_conditions("a>1;;").parts) == 1

    def test_garbage_rejected(self):
        with pytest.raises(PatternError):
            parse_conditions(">>>nonsense<<<")
