"""Tests for the fluent PatternBuilder."""

import pytest

from repro.errors import PatternError
from repro.graph.digraph import Graph
from repro.patterns.builder import PatternBuilder


class TestBuilder:
    def test_basic_build(self):
        q = (
            PatternBuilder()
            .node("pm", "PM", output=True)
            .node("db", "DB")
            .edge("pm", "db")
            .build()
        )
        assert q.shape == (2, 1)
        assert q.output_node == 0

    def test_label_defaults_to_name(self):
        q = PatternBuilder().node("PM", output=True).build()
        assert q.label(0) == "PM"

    def test_edges_helper(self):
        q = (
            PatternBuilder()
            .node("a", output=True).node("b").node("c")
            .edges(("a", "b"), ("b", "c"))
            .build()
        )
        assert q.num_edges == 2

    def test_conditions_are_attached(self):
        g = Graph()
        g.add_node("V", rate=5)
        g.add_node("V", rate=1)
        q = PatternBuilder().node("v", "V", conditions="rate>2", output=True).build()
        assert q.predicate(0).matches(g, 0)
        assert not q.predicate(0).matches(g, 1)

    def test_conditions_combine_with_predicate(self):
        from repro.patterns.predicates import AttrCompare

        g = Graph()
        g.add_node("V", rate=5, views=10)
        q = (
            PatternBuilder()
            .node("v", "V", conditions="rate>2", predicate=AttrCompare("views", ">", 100), output=True)
            .build()
        )
        assert not q.predicate(0).matches(g, 0)

    def test_output_method(self):
        q = PatternBuilder().node("a").node("b").output("b").edge("a", "b").build()
        assert q.output_node == 1

    def test_duplicate_name_rejected(self):
        with pytest.raises(PatternError):
            PatternBuilder().node("a").node("a")

    def test_unknown_edge_name_rejected(self):
        with pytest.raises(PatternError):
            PatternBuilder().node("a").edge("a", "zzz")

    def test_builder_single_use(self):
        b = PatternBuilder().node("a", output=True)
        b.build()
        with pytest.raises(PatternError):
            b.node("b")

    def test_build_validates_output(self):
        with pytest.raises(PatternError):
            PatternBuilder().node("a").build()

    def test_id_of(self):
        b = PatternBuilder().node("a").node("b")
        assert b.id_of("b") == 1
