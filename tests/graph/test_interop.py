"""Tests for networkx conversion."""

import networkx as nx

from repro.graph.digraph import Graph
from repro.graph.interop import from_networkx, to_networkx


def sample():
    g = Graph()
    g.add_node("A", rank=1)
    g.add_node("B")
    g.add_edge(0, 1)
    return g


class TestToNetworkx:
    def test_structure(self):
        nxg = to_networkx(sample())
        assert set(nxg.nodes()) == {0, 1}
        assert list(nxg.edges()) == [(0, 1)]

    def test_attributes(self):
        nxg = to_networkx(sample())
        assert nxg.nodes[0]["label"] == "A"
        assert nxg.nodes[0]["rank"] == 1


class TestFromNetworkx:
    def test_roundtrip(self):
        back = from_networkx(to_networkx(sample()))
        assert back.label(0) == "A"
        assert back.has_edge(0, 1)
        assert back.attr(0, "rank") == 1

    def test_remaps_arbitrary_node_ids(self):
        nxg = nx.DiGraph()
        nxg.add_node("x", label="PM")
        nxg.add_node("y", label="DB")
        nxg.add_edge("x", "y")
        g = from_networkx(nxg)
        assert g.num_nodes == 2 and g.num_edges == 1
        assert sorted([g.label(0), g.label(1)]) == ["DB", "PM"]

    def test_default_label(self):
        nxg = nx.DiGraph()
        nxg.add_node(0)
        g = from_networkx(nxg, default_label="???")
        assert g.label(0) == "???"
