"""Equivalence suite: patched (overlay) snapshots ≡ full rebuilds.

A :class:`PatchedCSRSnapshot` overlays an op log on a flat base —
tombstone masks over the base runs plus append-only edge segments —
instead of recompiling the arrays.  Every read a consumer can issue
(adjacency runs, label buckets, membership counting scans, ``in_max``,
gathered in-slices, the match-restricted CSR, the list adapters) must
return exactly what a flat :meth:`CSRSnapshot.build` over the mutated
graph returns, across hypothesis-generated mutation interleavings
(edge add/remove, remove-then-re-add ordering, node add/remove with
label-table growth).  The :class:`SnapshotPatcher` policy — patch small
deltas, compact past the overlay budget, restore a base dropped without
ops — is pinned alongside.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import csr
from repro.graph.delta import SET_ATTRS
from repro.graph.digraph import Graph

pytestmark = pytest.mark.skipif(not csr.available(), reason="requires numpy")

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

LABELS = "ABCDE"


def seeded_graph(seed: int, num_nodes: int = 30, num_edges: int = 90) -> Graph:
    rng = random.Random(seed)
    graph = Graph()
    for _ in range(num_nodes):
        graph.add_node(rng.choice(LABELS))
    added = 0
    while added < num_edges:
        src, dst = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if not graph.has_edge(src, dst):
            graph.add_edge(src, dst)
            added += 1
    return graph


def mutate(graph: Graph, rng: random.Random, steps: int) -> None:
    """A random structural interleaving, including the tricky orderings."""
    for _ in range(steps):
        roll = rng.random()
        edges = list(graph.edges())
        live = [v for v in graph.nodes() if graph.is_live(v)]
        if roll < 0.25 and edges:
            graph.remove_edge(*rng.choice(edges))
        elif roll < 0.50 and len(live) >= 2:
            src, dst = rng.choice(live), rng.choice(live)
            if not graph.has_edge(src, dst):
                graph.add_edge(src, dst)
        elif roll < 0.62:
            graph.add_node(rng.choice(LABELS + "FG"))  # may grow the label table
        elif roll < 0.72 and len(live) > 4:
            graph.remove_node(rng.choice(live))
        elif roll < 0.85 and edges:
            # remove + re-add: the re-added edge moves to the end of its
            # adjacency run, which the overlay must replicate.
            src, dst = rng.choice(edges)
            graph.remove_edge(src, dst)
            graph.add_edge(src, dst)
        elif live:
            graph.set_attrs(rng.choice(live), w=rng.random())  # ignored by patch


def record_ops(graph: Graph):
    ops: list = []
    unsubscribe = graph.add_listener(ops.append)
    return ops, unsubscribe


def structural(ops):
    return [op for op in ops if op.kind != SET_ATTRS]


def assert_snapshots_equivalent(patched, fresh) -> None:
    import numpy as np

    assert patched.num_nodes == fresh.num_nodes
    assert patched.num_edges == fresh.num_edges
    assert patched.num_live == fresh.num_live
    np.testing.assert_array_equal(patched.live_mask, fresh.live_mask)
    np.testing.assert_array_equal(patched.live_nodes, fresh.live_nodes)
    np.testing.assert_array_equal(patched.compact_of, fresh.compact_of)
    for node in range(fresh.num_nodes):
        np.testing.assert_array_equal(
            patched.successors(node), fresh.successors(node)
        )
        np.testing.assert_array_equal(
            patched.predecessors(node), fresh.predecessors(node)
        )
    for label_id in range(max(patched.num_labels, fresh.num_labels)):
        np.testing.assert_array_equal(
            patched.nodes_with_label_id(label_id),
            fresh.nodes_with_label_id(label_id),
        )
    membership = np.zeros(fresh.num_nodes, dtype=np.uint8)
    membership[::3] = 1
    membership[1::7] = 1
    np.testing.assert_array_equal(
        patched.out_counts(membership), fresh.out_counts(membership)
    )
    np.testing.assert_array_equal(
        patched.in_counts(membership), fresh.in_counts(membership)
    )
    if fresh.num_nodes > 4:
        np.testing.assert_array_equal(
            patched.out_counts_range(membership, 2, fresh.num_nodes - 2),
            fresh.out_counts_range(membership, 2, fresh.num_nodes - 2),
        )
    values = np.arange(fresh.num_nodes, dtype=np.float64) * 0.5
    np.testing.assert_array_equal(patched.in_max(values), fresh.in_max(values))
    live = [int(v) for v in fresh.live_nodes]
    if live:
        np.testing.assert_array_equal(
            patched.gather_in_slices(live), fresh.gather_in_slices(live)
        )
    p_off, p_tgt = patched.restricted_out_csr(membership)
    f_off, f_tgt = fresh.restricted_out_csr(membership)
    np.testing.assert_array_equal(p_off, f_off)
    np.testing.assert_array_equal(p_tgt, f_tgt)
    assert patched.out_adjacency_lists() == fresh.out_adjacency_lists()
    assert patched.in_adjacency_lists() == fresh.in_adjacency_lists()
    assert patched.out_csr_lists() == fresh.out_csr_lists()
    assert patched.in_csr_lists() == fresh.in_csr_lists()


@given(seed=st.integers(0, 10_000), steps=st.integers(1, 18))
@SETTINGS
def test_patched_equals_rebuilt_across_mutation_interleavings(seed, steps):
    graph = seeded_graph(seed)
    base = csr.CSRSnapshot.build(graph)
    ops, unsubscribe = record_ops(graph)
    mutate(graph, random.Random(seed * 31 + steps), steps)
    unsubscribe()
    patched = csr.PatchedCSRSnapshot.patch(base, structural(ops), graph)
    fresh = csr.CSRSnapshot.build(graph)
    assert_snapshots_equivalent(patched, fresh)


@given(seed=st.integers(0, 10_000))
@SETTINGS
def test_bucket_tokens_split_touched_from_inherited(seed):
    """Untouched labels keep the base's token (bucket-cache survival);
    touched labels mint a fresh one (stale buckets unreachable)."""
    graph = seeded_graph(seed)
    base = csr.CSRSnapshot.build(graph)
    ops, unsubscribe = record_ops(graph)
    mutate(graph, random.Random(seed + 1), 8)
    unsubscribe()
    patched = csr.PatchedCSRSnapshot.patch(base, structural(ops), graph)
    import numpy as np

    for label_id in range(base.num_labels):
        if patched.bucket_token(label_id) == base.token:
            # Inherited token ⇒ the bucket must be byte-identical.
            np.testing.assert_array_equal(
                patched.nodes_with_label_id(label_id),
                base.nodes_with_label_id(label_id),
            )
        else:
            assert patched.bucket_token(label_id) == patched.token
    # New labels (grown table) always carry the patched token.
    for label_id in range(base.num_labels, patched.num_labels):
        assert patched.bucket_token(label_id) == patched.token
    # Live-set token moves exactly when a node op happened.
    node_ops = any(
        op.kind in ("add_node", "remove_node") for op in structural(ops)
    )
    if node_ops:
        assert patched.live_token() == patched.token
    else:
        assert patched.live_token() == base.token


def test_patch_refuses_stacked_overlays():
    graph = seeded_graph(3)
    base = csr.CSRSnapshot.build(graph)
    ops, unsubscribe = record_ops(graph)
    graph.add_edge(0, 5) if not graph.has_edge(0, 5) else graph.remove_edge(0, 5)
    unsubscribe()
    patched = csr.PatchedCSRSnapshot.patch(base, structural(ops), graph)
    with pytest.raises(ValueError):
        csr.PatchedCSRSnapshot.patch(patched, [], graph)


class TestSnapshotPatcher:
    def test_small_delta_patches_through_graph_snapshot(self):
        graph = seeded_graph(11)
        csr.attach_snapshot_patching(graph, compact_ratio=0.5)
        flat = graph.snapshot()
        assert type(flat) is csr.CSRSnapshot
        edges = list(graph.edges())
        graph.remove_edge(*edges[0])
        graph.add_edge(edges[0][1], edges[0][0]) if not graph.has_edge(
            edges[0][1], edges[0][0]
        ) else None
        snap = graph.snapshot()
        assert isinstance(snap, csr.PatchedCSRSnapshot)
        assert graph.snapshot() is snap  # cached under the overlay key
        assert_snapshots_equivalent(snap, csr.CSRSnapshot.build(graph))
        csr.patcher_of(graph).detach()

    def test_large_delta_compacts_to_flat(self):
        graph = seeded_graph(12)
        csr.attach_snapshot_patching(graph, compact_ratio=0.0)
        graph.snapshot()
        graph.add_node("A")
        snap = graph.snapshot()
        # Ratio zero: every delta exceeds the overlay budget.
        assert type(snap) is csr.CSRSnapshot
        assert csr.patcher_of(graph).pending_ops == 0  # log reset at compaction
        csr.patcher_of(graph).detach()

    def test_successive_patches_stay_relative_to_flat_base(self):
        """Overlays never stack: each patch replays the full log on the
        one flat base, so a second small delta still patches correctly."""
        graph = seeded_graph(13)
        csr.attach_snapshot_patching(graph, compact_ratio=0.5)
        graph.snapshot()
        for round_ in range(3):
            edges = list(graph.edges())
            graph.remove_edge(*edges[round_])
            snap = graph.snapshot()
            assert isinstance(snap, csr.PatchedCSRSnapshot)
            assert_snapshots_equivalent(snap, csr.CSRSnapshot.build(graph))
        csr.patcher_of(graph).detach()

    def test_base_restored_after_external_clear(self):
        graph = seeded_graph(14)
        csr.attach_snapshot_patching(graph)
        flat = graph.snapshot()
        graph.derived.clear()  # no structural op recorded
        assert graph.snapshot() is flat
        csr.patcher_of(graph).detach()

    def test_detach_restores_oracle_path(self):
        graph = seeded_graph(15)
        patcher = csr.attach_snapshot_patching(graph)
        graph.snapshot()
        patcher.detach()
        assert csr.patcher_of(graph) is None
        graph.add_node("B")
        snap = graph.snapshot()
        assert type(snap) is csr.CSRSnapshot

    def test_attach_is_idempotent_and_retunes(self):
        graph = seeded_graph(16)
        patcher = csr.attach_snapshot_patching(graph, compact_ratio=0.25)
        again = csr.attach_snapshot_patching(graph, compact_ratio=0.75)
        assert again is patcher
        assert patcher.compact_ratio == 0.75
        patcher.detach()

    def test_outcome_counters_cover_patch_compact_rebuild(self):
        from repro.obs import MetricsRegistry, use_metrics

        graph = seeded_graph(17)
        registry = MetricsRegistry()
        with use_metrics(registry):
            patcher = csr.attach_snapshot_patching(graph, compact_ratio=0.5)
            graph.snapshot()  # cold: rebuilt
            edges = list(graph.edges())
            graph.remove_edge(*edges[0])
            graph.snapshot()  # small delta: patched
            patcher.compact_ratio = 0.0
            graph.remove_edge(*edges[1])
            graph.snapshot()  # over budget: compacted
        counter = registry.get("repro_snapshot_patch_total")
        assert counter is not None
        outcomes = {
            labels["outcome"]: value for labels, value in counter.samples()
        }
        assert outcomes == {"rebuilt": 1.0, "patched": 1.0, "compacted": 1.0}
        csr.patcher_of(graph).detach()
