"""Tests for the graph mutation API: removals, deltas, events, thaw."""

import pytest

from repro.errors import GraphError
from repro.graph.delta import DeltaOp
from repro.graph.digraph import Graph


@pytest.fixture()
def diamond():
    g = Graph()
    a = g.add_node("A")
    b = g.add_node("B")
    c = g.add_node("C")
    d = g.add_node("D")
    g.add_edges([(a, b), (a, c), (b, d), (c, d)])
    return g


class TestRemoveEdge:
    def test_removes_both_directions_of_adjacency(self, diamond):
        diamond.remove_edge(0, 1)
        assert not diamond.has_edge(0, 1)
        assert 1 not in diamond.successors(0)
        assert 0 not in diamond.predecessors(1)
        assert diamond.num_edges == 3

    def test_missing_edge_rejected(self, diamond):
        with pytest.raises(GraphError):
            diamond.remove_edge(1, 0)

    def test_add_after_remove_roundtrips(self, diamond):
        diamond.remove_edge(0, 1)
        diamond.add_edge(0, 1)
        assert diamond.has_edge(0, 1)
        assert diamond.num_edges == 4


class TestRemoveNode:
    def test_strips_incident_edges(self, diamond):
        diamond.remove_node(1)
        assert not diamond.has_edge(0, 1) and not diamond.has_edge(1, 3)
        assert diamond.num_edges == 2
        assert not diamond.is_live(1)
        assert diamond.num_live_nodes == 3
        assert list(diamond.live_nodes()) == [0, 2, 3]

    def test_ids_stay_dense(self, diamond):
        diamond.remove_node(1)
        assert diamond.num_nodes == 4  # slot is tombstoned, not reused
        new = diamond.add_node("E")
        assert new == 4

    def test_double_removal_rejected(self, diamond):
        diamond.remove_node(1)
        with pytest.raises(GraphError):
            diamond.remove_node(1)

    def test_edges_at_removed_node_rejected(self, diamond):
        diamond.remove_node(1)
        with pytest.raises(GraphError):
            diamond.add_edge(0, 1)

    def test_label_index_and_histogram_exclude_tombstones(self, diamond):
        assert diamond.nodes_with_label("B") == [1]  # builds the index
        diamond.remove_node(1)
        assert diamond.nodes_with_label("B") == []
        assert "B" not in diamond.label_histogram()

    def test_attrs_dropped(self, diamond):
        diamond.set_attrs(1, views=3)
        diamond.remove_node(1)
        assert diamond.attr(1, "views") is None


class TestLabelIndexMaintenance:
    def test_add_node_appends_to_built_index(self, diamond):
        assert diamond.nodes_with_label("A") == [0]
        new = diamond.add_node("A")
        assert diamond.nodes_with_label("A") == [0, new]

    def test_edge_mutations_keep_index_warm(self, diamond):
        diamond.nodes_with_label("A")
        diamond.remove_edge(0, 1)
        diamond.add_edge(1, 0)
        assert diamond._label_index is not None


class TestApplyDelta:
    def test_batch_returns_assigned_node_ids(self, diamond):
        results = diamond.apply_delta(
            [
                DeltaOp.add_node("E", views=7),
                DeltaOp.add_edge(3, 4),
                DeltaOp.remove_edge(0, 1),
                DeltaOp.remove_node(2),
            ]
        )
        assert results == [4, None, None, None]
        assert diamond.label(4) == "E" and diamond.attr(4, "views") == 7
        assert diamond.has_edge(3, 4)
        assert not diamond.has_edge(0, 1)
        assert not diamond.is_live(2)


class TestChangeEvents:
    def test_each_mutation_emits_one_event(self, diamond):
        seen = []
        diamond.add_listener(seen.append)
        node = diamond.add_node("E")
        diamond.add_edge(3, node)
        diamond.remove_edge(3, node)
        diamond.set_attrs(node, views=4)
        kinds = [op.kind for op in seen]
        assert kinds == ["add_node", "add_edge", "remove_edge", "set_attrs"]
        assert seen[0].node == node and seen[0].label == "E"
        assert seen[-1].node == node and seen[-1].attrs == {"views": 4}

    def test_duplicate_edge_is_silent(self, diamond):
        seen = []
        diamond.add_listener(seen.append)
        diamond.add_edge(0, 1)  # already present
        assert seen == []

    def test_remove_node_emits_edge_removals_first(self, diamond):
        seen = []
        diamond.add_listener(seen.append)
        diamond.remove_node(1)
        kinds = [op.kind for op in seen]
        assert kinds == ["remove_edge", "remove_edge", "remove_node"]
        assert seen[-1].node == 1

    def test_unsubscribe(self, diamond):
        seen = []
        unsubscribe = diamond.add_listener(seen.append)
        unsubscribe()
        diamond.add_node("E")
        assert seen == []


class TestFreezeThaw:
    def test_frozen_rejects_removals(self, diamond):
        diamond.freeze()
        with pytest.raises(GraphError):
            diamond.remove_edge(0, 1)
        with pytest.raises(GraphError):
            diamond.remove_node(1)

    def test_thaw_reenables_mutation(self, diamond):
        diamond.freeze().thaw()
        assert not diamond.frozen
        diamond.remove_edge(0, 1)
        node = diamond.add_node("E")
        diamond.add_edge(node, 0)
        assert diamond.has_edge(node, 0)

    def test_thaw_keeps_label_index_consistent(self, diamond):
        diamond.freeze().thaw()
        new = diamond.add_node("A")
        assert diamond.nodes_with_label("A") == [0, new]
