"""Unit tests for SCC / condensation / ranks / reachability."""

import networkx as nx
import pytest

from repro.errors import GraphError
from repro.graph.algorithms import (
    bfs_distance,
    condensation,
    descendants,
    is_dag,
    reachable_from,
    strongly_connected_components,
    topological_order,
    topological_ranks,
)
from repro.graph.digraph import Graph
from repro.graph.interop import to_networkx

from tests.conftest import make_random_graph


@pytest.fixture()
def cyclic_graph():
    g = Graph()
    g.add_nodes(list("ABCDE"))
    # cycle B<->C, chain A->B->D, C->E
    g.add_edges([(0, 1), (1, 2), (2, 1), (1, 3), (2, 4)])
    return g


class TestSCC:
    def test_triangle_is_one_component(self):
        g = Graph()
        g.add_nodes(["X"] * 3)
        g.add_edges([(0, 1), (1, 2), (2, 0)])
        comps = strongly_connected_components(g)
        assert len(comps) == 1 and set(comps[0]) == {0, 1, 2}

    def test_dag_has_singleton_components(self):
        g = Graph()
        g.add_nodes(["X"] * 4)
        g.add_edges([(0, 1), (1, 2), (0, 3)])
        assert all(len(c) == 1 for c in strongly_connected_components(g))

    def test_reverse_topological_emission_order(self, cyclic_graph):
        comps = strongly_connected_components(cyclic_graph)
        index_of = {}
        for i, comp in enumerate(comps):
            for node in comp:
                index_of[node] = i
        for src, dst in cyclic_graph.edges():
            if index_of[src] != index_of[dst]:
                assert index_of[src] > index_of[dst]

    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_networkx(self, seed):
        g = make_random_graph(seed, num_nodes=20, num_edges=45)
        ours = {frozenset(c) for c in strongly_connected_components(g)}
        theirs = {frozenset(c) for c in nx.strongly_connected_components(to_networkx(g))}
        assert ours == theirs


class TestCondensation:
    def test_component_membership(self, cyclic_graph):
        cond = condensation(cyclic_graph)
        assert cond.comp_of[1] == cond.comp_of[2]
        assert cond.comp_of[0] != cond.comp_of[1]

    def test_edges_are_deduplicated(self, cyclic_graph):
        cond = condensation(cyclic_graph)
        for comp in range(cond.num_components):
            assert len(cond.comp_succ[comp]) == len(set(cond.comp_succ[comp]))

    def test_is_trivial(self, cyclic_graph):
        cond = condensation(cyclic_graph)
        assert cond.is_trivial(cond.comp_of[0])
        assert not cond.is_trivial(cond.comp_of[1])

    def test_self_loop_marks_nontrivial(self):
        g = Graph()
        v = g.add_node("A")
        g.add_edge(v, v)
        cond = condensation(g)
        assert not cond.is_trivial(cond.comp_of[v], self_loops={v})


class TestRanks:
    def test_leaves_have_rank_zero(self, cyclic_graph):
        ranks, _ = topological_ranks(cyclic_graph)
        assert ranks[3] == 0 and ranks[4] == 0

    def test_rank_is_one_plus_max_child(self, cyclic_graph):
        ranks, _ = topological_ranks(cyclic_graph)
        assert ranks[1] == ranks[2] == 1  # the B<->C cycle sits above leaves
        assert ranks[0] == 2

    def test_figure1_pattern_ranks(self, fig1):
        ranks = fig1.pattern.analysis.ranks
        assert ranks[fig1.query_nodes["ST"]] == 0
        assert ranks[fig1.query_nodes["DB"]] == ranks[fig1.query_nodes["PRG"]] == 1
        assert ranks[fig1.query_nodes["PM"]] == 2


class TestTopologicalOrder:
    def test_respects_edges(self):
        g = Graph()
        g.add_nodes(["X"] * 5)
        g.add_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])
        order = topological_order(g)
        pos = {v: i for i, v in enumerate(order)}
        for a, b in g.edges():
            assert pos[a] < pos[b]

    def test_cycle_raises(self, cyclic_graph):
        with pytest.raises(GraphError):
            topological_order(cyclic_graph)

    def test_is_dag(self, cyclic_graph):
        assert not is_dag(cyclic_graph)
        g = Graph()
        g.add_nodes(["X", "X"])
        g.add_edge(0, 1)
        assert is_dag(g)

    def test_self_loop_is_not_dag(self):
        g = Graph()
        v = g.add_node("A")
        g.add_edge(v, v)
        assert not is_dag(g)


class TestReachability:
    def test_reachable_from_includes_sources_by_default(self, cyclic_graph):
        assert 0 in reachable_from(cyclic_graph, [0])

    def test_reachable_set(self, cyclic_graph):
        assert reachable_from(cyclic_graph, [1]) == {1, 2, 3, 4}

    def test_descendants_excludes_self_unless_cyclic(self, cyclic_graph):
        assert 0 not in descendants(cyclic_graph, 0)
        assert 1 in descendants(cyclic_graph, 1)  # B is on a cycle

    def test_bfs_distance(self, cyclic_graph):
        assert bfs_distance(cyclic_graph, 0, 4) == 3
        assert bfs_distance(cyclic_graph, 0, 0) == 0
        assert bfs_distance(cyclic_graph, 3, 0) is None
