"""Unit tests for graph statistics."""

from repro.graph.digraph import Graph
from repro.graph.statistics import DegreeStats, degree_histogram, graph_stats, label_counts


def small():
    g = Graph()
    g.add_nodes(["A", "A", "B"])
    g.add_edges([(0, 1), (1, 2), (2, 0), (0, 2)])
    return g


class TestGraphStats:
    def test_counts(self):
        stats = graph_stats(small())
        assert stats.num_nodes == 3
        assert stats.num_edges == 4
        assert stats.num_labels == 2

    def test_degrees(self):
        stats = graph_stats(small())
        assert stats.out_degree.maximum == 2
        assert abs(stats.out_degree.mean - 4 / 3) < 1e-12

    def test_scc_summary(self):
        stats = graph_stats(small())
        assert stats.num_sccs == 1
        assert stats.largest_scc == 3

    def test_density(self):
        assert abs(graph_stats(small()).density - 4 / 3) < 1e-12

    def test_empty_graph(self):
        stats = graph_stats(Graph())
        assert stats.num_nodes == 0 and stats.density == 0.0


class TestHelpers:
    def test_degree_stats_of_empty(self):
        assert DegreeStats.of([]) == DegreeStats(0, 0, 0.0)

    def test_degree_histogram(self):
        hist = degree_histogram(small(), "out")
        assert hist == {2: 1, 1: 2}

    def test_in_histogram(self):
        hist = degree_histogram(small(), "in")
        assert hist == {1: 2, 2: 1}

    def test_label_counts(self):
        assert label_counts(small()) == {"A": 2, "B": 1}
