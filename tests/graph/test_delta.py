"""Tests for the delta-op vocabulary and its JSON-lines serialisation."""

import pytest

from repro.errors import GraphError
from repro.graph.delta import (
    DeltaOp,
    load_delta_file,
    op_from_json_dict,
    save_delta_file,
)


class TestDeltaOp:
    def test_constructors(self):
        assert DeltaOp.add_edge(1, 2).kind == "add_edge"
        assert DeltaOp.remove_edge(1, 2).dst == 2
        assert DeltaOp.add_node("PM", salary=90).attrs == {"salary": 90}
        assert DeltaOp.remove_node(5).node == 5

    def test_unknown_kind_rejected(self):
        with pytest.raises(GraphError):
            DeltaOp("rename_node", node=1)

    def test_missing_fields_rejected_at_construction(self):
        with pytest.raises(GraphError):
            DeltaOp("add_edge", src=0)  # no dst
        with pytest.raises(GraphError):
            DeltaOp("remove_node")  # no node
        with pytest.raises(GraphError):
            DeltaOp("add_node")  # no label
        with pytest.raises(GraphError):
            DeltaOp("set_attrs", attrs={"x": 1})  # no node

    def test_json_round_trip(self):
        ops = [
            DeltaOp.add_node("DB", rate=4.5),
            DeltaOp.add_node("PM"),
            DeltaOp.add_edge(0, 1),
            DeltaOp.remove_edge(0, 1),
            DeltaOp.set_attrs(1, rate=2.5, views=10),
            DeltaOp.remove_node(0),
        ]
        assert [op_from_json_dict(op.to_json_dict()) for op in ops] == ops

    def test_bad_payloads_rejected(self):
        with pytest.raises(GraphError):
            op_from_json_dict({"op": "add_node"})  # no label
        with pytest.raises(GraphError):
            op_from_json_dict({"op": "nope"})


class TestDeltaFiles:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "d.jsonl"
        ops = [DeltaOp.add_edge(3, 4), DeltaOp.add_node("A"), DeltaOp.remove_node(2)]
        save_delta_file(ops, path)
        assert load_delta_file(path) == ops

    def test_blank_and_comment_lines_skipped(self, tmp_path):
        path = tmp_path / "d.jsonl"
        path.write_text('# churn\n\n{"op": "add_edge", "src": 0, "dst": 1}\n')
        assert load_delta_file(path) == [DeltaOp.add_edge(0, 1)]

    def test_bad_line_reports_location(self, tmp_path):
        path = tmp_path / "d.jsonl"
        path.write_text('{"op": "add_edge", "src": 0, "dst": 1}\nnot json\n')
        with pytest.raises(GraphError, match=":2"):
            load_delta_file(path)

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "d.jsonl"
        save_delta_file([], path)
        assert load_delta_file(path) == []
