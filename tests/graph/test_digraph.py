"""Unit tests for the Graph store."""

import pytest

from repro.errors import GraphError
from repro.graph.digraph import Graph


@pytest.fixture()
def triangle():
    g = Graph()
    a = g.add_node("A")
    b = g.add_node("B", weight=3)
    c = g.add_node("C")
    g.add_edge(a, b)
    g.add_edge(b, c)
    g.add_edge(c, a)
    return g


class TestConstruction:
    def test_add_node_returns_dense_ids(self):
        g = Graph()
        assert [g.add_node("X") for _ in range(3)] == [0, 1, 2]

    def test_add_nodes_bulk(self):
        g = Graph()
        assert g.add_nodes(["A", "B"]) == [0, 1]

    def test_duplicate_edge_is_noop(self, triangle):
        triangle.add_edge(0, 1)
        assert triangle.num_edges == 3

    def test_edge_to_unknown_node_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.add_edge(0, 99)

    def test_self_loop_allowed(self):
        g = Graph()
        v = g.add_node("A")
        g.add_edge(v, v)
        assert g.has_edge(v, v)

    def test_size_is_v_plus_e(self, triangle):
        assert triangle.size == 6


class TestInspection:
    def test_successors_and_predecessors(self, triangle):
        assert list(triangle.successors(0)) == [1]
        assert list(triangle.predecessors(0)) == [2]

    def test_degrees(self, triangle):
        assert triangle.out_degree(0) == 1
        assert triangle.in_degree(0) == 1

    def test_labels(self, triangle):
        assert triangle.label(1) == "B"
        assert triangle.label_id(1) == triangle.labels.get("B")

    def test_attrs(self, triangle):
        assert triangle.attr(1, "weight") == 3
        assert triangle.attr(0, "weight") is None
        assert triangle.attr(0, "weight", 7) == 7

    def test_set_attrs_merges(self, triangle):
        triangle.set_attrs(1, colour="red")
        assert triangle.attrs(1) == {"weight": 3, "colour": "red"}

    def test_attr_unknown_node_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.attr(42, "x")

    def test_edges_iteration(self, triangle):
        assert set(triangle.edges()) == {(0, 1), (1, 2), (2, 0)}

    def test_nodes_with_label(self, triangle):
        assert triangle.nodes_with_label("B") == [1]
        assert triangle.nodes_with_label("nope") == []

    def test_label_histogram(self):
        g = Graph()
        g.add_nodes(["A", "A", "B"])
        assert g.label_histogram() == {"A": 2, "B": 1}


class TestFreeze:
    def test_freeze_blocks_mutation(self, triangle):
        triangle.freeze()
        with pytest.raises(GraphError):
            triangle.add_node("D")
        with pytest.raises(GraphError):
            triangle.add_edge(0, 2)

    def test_freeze_is_idempotent(self, triangle):
        assert triangle.freeze() is triangle.freeze()

    def test_frozen_graph_still_queryable(self, triangle):
        triangle.freeze()
        assert list(triangle.successors(0)) == [1]

    def test_mutation_clears_derived_cache(self):
        g = Graph()
        g.add_node("A")
        g.derived["probe"] = 1
        g.add_node("B")
        assert g.derived == {}


class TestDerivedGraphs:
    def test_subgraph_keeps_induced_edges(self, triangle):
        sub, mapping = triangle.subgraph([0, 1])
        assert sub.num_nodes == 2
        assert sub.has_edge(mapping[0], mapping[1])
        assert sub.num_edges == 1

    def test_subgraph_copies_attrs(self, triangle):
        sub, mapping = triangle.subgraph([1])
        assert sub.attr(mapping[1], "weight") == 3

    def test_reversed_flips_all_edges(self, triangle):
        rev = triangle.reversed()
        assert set(rev.edges()) == {(1, 0), (2, 1), (0, 2)}
