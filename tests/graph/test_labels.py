"""Unit tests for label interning."""

import pytest

from repro.errors import GraphError
from repro.graph.labels import LabelTable


class TestLabelTable:
    def test_intern_assigns_dense_ids(self):
        table = LabelTable()
        assert [table.intern(x) for x in "abc"] == [0, 1, 2]

    def test_intern_is_idempotent(self):
        table = LabelTable()
        assert table.intern("x") == table.intern("x") == 0

    def test_constructor_seeds_labels(self):
        table = LabelTable(["PM", "DB"])
        assert table.get("DB") == 1

    def test_name_roundtrip(self):
        table = LabelTable(["PM", "DB"])
        assert table.name(table.intern("DB")) == "DB"

    def test_get_unknown_returns_none(self):
        assert LabelTable().get("nope") is None

    def test_name_unknown_raises(self):
        with pytest.raises(GraphError):
            LabelTable().name(3)

    def test_len_and_contains(self):
        table = LabelTable(["a", "b"])
        assert len(table) == 2
        assert "a" in table and "z" not in table

    def test_iteration_preserves_insertion_order(self):
        table = LabelTable(["z", "a", "m"])
        assert list(table) == ["z", "a", "m"]
