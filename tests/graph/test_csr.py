"""CSR snapshot layer: structure, caching, and invalidation."""

import pytest

from repro.errors import GraphError
from repro.graph import csr
from repro.graph.csr import CSR_SNAPSHOT_KEY, CSRSnapshot
from repro.graph.digraph import Graph
from repro.incremental.manager import MatchViewManager
from repro.patterns.pattern import pattern_from_edges

pytestmark = pytest.mark.skipif(not csr.available(), reason="numpy unavailable")


def small_graph() -> Graph:
    g = Graph()
    for label in ["A", "B", "A", "C", "B"]:
        g.add_node(label)
    g.add_edges([(0, 1), (0, 2), (1, 3), (3, 4), (2, 0), (2, 4)])
    return g


class TestStructure:
    def test_adjacency_matches_graph(self):
        g = small_graph()
        snap = g.snapshot()
        assert snap.num_nodes == g.num_nodes
        assert snap.num_edges == g.num_edges
        for v in g.nodes():
            assert snap.successors(v).tolist() == list(g.successors(v))
            assert snap.predecessors(v).tolist() == list(g.predecessors(v))

    def test_label_buckets_match_label_index(self):
        g = small_graph()
        snap = g.snapshot()
        for label in ("A", "B", "C"):
            label_id = g.labels.get(label)
            assert snap.label_bucket_list(label_id) == g.nodes_with_label(label)
        assert snap.label_bucket_list(-1) == []
        assert snap.label_bucket_list(99) == []

    def test_live_remap_after_tombstones(self):
        g = small_graph()
        g.remove_node(3)
        snap = g.snapshot()
        assert snap.live_list() == [0, 1, 2, 4]
        assert snap.num_live == 4
        assert snap.compact_of.tolist() == [0, 1, 2, -1, 3]
        assert snap.live_mask.tolist() == [1, 1, 1, 0, 1]
        # Tombstoned node left every label bucket.
        assert 3 not in snap.label_bucket_list(g.labels.get("C"))
        # Its incident edges are gone from the CSR arrays too.
        assert snap.num_edges == g.num_edges
        assert snap.successors(3).tolist() == []

    def test_empty_graph(self):
        snap = Graph().snapshot()
        assert snap.num_nodes == 0
        assert snap.num_edges == 0
        assert snap.live_list() == []

    def test_frozen_graph_snapshots(self):
        g = small_graph().freeze()
        snap = g.snapshot()
        assert snap.num_edges == g.num_edges

    def test_csr_list_mirrors(self):
        g = small_graph()
        snap = g.snapshot()
        offsets, targets = snap.out_csr_lists()
        for v in g.nodes():
            assert targets[offsets[v] : offsets[v + 1]] == list(g.successors(v))
        in_offsets, sources = snap.in_csr_lists()
        for v in g.nodes():
            assert sources[in_offsets[v] : in_offsets[v + 1]] == list(g.predecessors(v))


class TestKernels:
    def test_out_counts(self):
        import numpy as np

        g = small_graph()
        snap = g.snapshot()
        member = np.zeros(g.num_nodes, dtype=np.uint8)
        member[[1, 4]] = 1
        expected = [
            sum(1 for c in g.successors(v) if c in (1, 4)) for v in g.nodes()
        ]
        assert snap.out_counts(member).tolist() == expected

    def test_in_max(self):
        import numpy as np

        g = small_graph()
        snap = g.snapshot()
        values = np.array([5.0, 2.0, 7.0, 0.0, 1.0])
        expected = [
            max((values[p] for p in g.predecessors(v)), default=0.0)
            for v in g.nodes()
        ]
        assert snap.in_max(values).tolist() == expected

    def test_gather_in_slices(self):
        g = small_graph()
        snap = g.snapshot()
        gathered = snap.gather_in_slices([4, 0, 3])
        expected = list(g.predecessors(4)) + list(g.predecessors(0)) + list(
            g.predecessors(3)
        )
        assert gathered.tolist() == expected
        assert snap.gather_in_slices([]).tolist() == []


class TestCachingAndInvalidation:
    def test_snapshot_is_cached(self):
        g = small_graph()
        assert g.snapshot() is g.snapshot()
        assert isinstance(g.derived[CSR_SNAPSHOT_KEY], CSRSnapshot)

    def test_structural_mutation_invalidates(self):
        g = small_graph()
        before = g.snapshot()
        g.add_edge(4, 0)
        after = g.snapshot()
        assert after is not before
        assert after.num_edges == before.num_edges + 1

    def test_set_attrs_keeps_snapshot_warm(self):
        # Snapshots carry no attribute state, and set_attrs emits no
        # structural invalidation — the compiled arrays stay valid.
        g = small_graph()
        before = g.snapshot()
        g.set_attrs(0, score=3)
        assert g.snapshot() is before

    def test_targeted_invalidators_drop_snapshot(self):
        # With a MatchViewManager attached, the graph switches from the
        # blanket derived-cache clear to targeted invalidators — the CSR
        # snapshot must be covered by them.
        g = small_graph()
        manager = MatchViewManager.for_graph(g)
        manager.register(pattern_from_edges(["A", "B"], [(0, 1)], output=0))
        snap = g.snapshot()
        g.derived["user:custom"] = "survives"
        g.add_edge(4, 2)
        assert g.derived.get(CSR_SNAPSHOT_KEY) is not snap
        assert g.derived["user:custom"] == "survives"
        fresh = g.snapshot()
        assert fresh.num_edges == g.num_edges
        manager.close()

    def test_snapshot_after_remove_node(self):
        g = small_graph()
        g.snapshot()
        g.remove_node(0)
        snap = g.snapshot()
        assert 0 not in snap.live_list()
        assert snap.num_edges == g.num_edges


class TestUnavailableBackend:
    def test_snapshot_raises_without_numpy(self, monkeypatch):
        monkeypatch.setattr(csr, "np", None)
        g = small_graph()
        with pytest.raises(GraphError):
            g.snapshot()
        assert not csr.available()
