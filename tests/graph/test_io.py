"""Round-trip tests for graph serialisation."""

import pytest

from repro.errors import GraphError
from repro.graph.digraph import Graph
from repro.graph.io import (
    from_json_dict,
    load_edge_list,
    load_json,
    save_edge_list,
    save_json,
    to_json_dict,
)


@pytest.fixture()
def sample():
    g = Graph()
    g.add_node("A", views=10)
    g.add_node("B")
    g.add_node("A label with spaces")
    g.add_edges([(0, 1), (1, 2)])
    return g


class TestJson:
    def test_roundtrip_structure(self, sample, tmp_path):
        path = tmp_path / "g.json"
        save_json(sample, path)
        loaded = load_json(path)
        assert loaded.num_nodes == sample.num_nodes
        assert set(loaded.edges()) == set(sample.edges())

    def test_roundtrip_labels_and_attrs(self, sample, tmp_path):
        path = tmp_path / "g.json"
        save_json(sample, path)
        loaded = load_json(path)
        assert loaded.label(2) == "A label with spaces"
        assert loaded.attr(0, "views") == 10

    def test_rejects_foreign_documents(self):
        with pytest.raises(GraphError):
            from_json_dict({"format": "something-else"})

    def test_dict_form_is_plain_data(self, sample):
        payload = to_json_dict(sample)
        assert payload["labels"][1] == "B"
        assert [0, 1] in payload["edges"]


class TestEdgeList:
    def test_roundtrip(self, sample, tmp_path):
        path = tmp_path / "g.txt"
        save_edge_list(sample, path)
        loaded = load_edge_list(path)
        assert set(loaded.edges()) == set(sample.edges())
        assert loaded.label(2) == "A label with spaces"

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("v 0 A\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_non_dense_ids_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# repro-graph v1\nv 1 A\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# repro-graph v1\nx nonsense\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# repro-graph v1\n\n# comment\nv 0 A\nv 1 B\ne 0 1\n")
        loaded = load_edge_list(path)
        assert loaded.num_nodes == 2 and loaded.has_edge(0, 1)

    def test_tombstones_round_trip(self, sample, tmp_path):
        sample.remove_node(1)
        path = tmp_path / "g.txt"
        save_edge_list(sample, path)
        loaded = load_edge_list(path)
        assert not loaded.is_live(1)
        assert list(loaded.live_nodes()) == [0, 2]
        assert set(loaded.edges()) == set(sample.edges())


class TestJsonTombstones:
    def test_removed_nodes_stay_removed(self, sample, tmp_path):
        sample.remove_node(1)
        path = tmp_path / "g.json"
        save_json(sample, path)
        loaded = load_json(path)
        assert not loaded.is_live(1)
        assert loaded.num_live_nodes == 2
        assert set(loaded.edges()) == set(sample.edges())
