"""Shared fixtures: the paper's Figure 1 network and small random inputs."""

from __future__ import annotations

import random

import pytest

from repro.datasets.examples import example7_pattern, figure1
from repro.graph.digraph import Graph
from repro.patterns.pattern import Pattern


@pytest.fixture(scope="session")
def fig1():
    """The Figure 1 collaboration network + pattern Q (session-cached)."""
    return figure1()


@pytest.fixture()
def q1_dag():
    """Example 7's DAG pattern Q1."""
    return example7_pattern()


def make_random_graph(seed: int, num_nodes: int = 14, num_edges: int = 28,
                      labels: str = "ABC") -> Graph:
    """A small random labelled digraph for oracle comparisons."""
    rng = random.Random(seed)
    g = Graph()
    for _ in range(num_nodes):
        g.add_node(rng.choice(labels))
    added = 0
    while added < num_edges:
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a != b and not g.has_edge(a, b):
            g.add_edge(a, b)
            added += 1
    return g


def make_random_pattern(seed: int, num_nodes: int = 3, extra_edges: int = 1,
                        labels: str = "ABC", cyclic: bool = False) -> Pattern:
    """A small random pattern (tree + extra edges), output node 0."""
    rng = random.Random(seed)
    p = Pattern()
    for _ in range(num_nodes):
        p.add_node(rng.choice(labels))
    for child in range(1, num_nodes):
        p.add_edge(rng.randrange(child), child)
    tries = 0
    added = 0
    while added < extra_edges and tries < 20:
        tries += 1
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a == b or p.has_edge(a, b):
            continue
        if not cyclic and b == 0:
            continue
        p.add_edge(a, b)
        added += 1
    p.set_output(0)
    return p
