"""Tests for the top-level facade API."""

import pytest

from repro import api
from repro.errors import MatchingError


class TestFacade:
    def test_find_matches(self, fig1):
        result = api.find_matches(fig1.pattern, fig1.graph)
        assert result.total and result.relation_size == 15

    def test_output_matches(self, fig1):
        assert len(api.output_matches(fig1.pattern, fig1.graph)) == 4

    def test_top_k_routes_to_dag_engine(self, fig1, q1_dag):
        result = api.top_k_matches(q1_dag, fig1.graph, 1)
        assert result.algorithm == "TopKDAG"

    def test_top_k_routes_to_cyclic_engine(self, fig1):
        result = api.top_k_matches(fig1.pattern, fig1.graph, 2)
        assert result.algorithm == "TopK"

    def test_nopt_naming(self, fig1):
        result = api.top_k_matches(fig1.pattern, fig1.graph, 2, optimized=False)
        assert result.algorithm == "TopKnopt"

    def test_baseline(self, fig1):
        assert api.baseline_matches(fig1.pattern, fig1.graph, 2).algorithm == "Match"

    def test_diversified_methods(self, fig1):
        heuristic = api.diversified_matches(fig1.pattern, fig1.graph, 2, method="heuristic")
        approx = api.diversified_matches(fig1.pattern, fig1.graph, 2, method="approx")
        assert heuristic.algorithm == "TopKDH"
        assert approx.algorithm == "TopKDiv"

    def test_unknown_method(self, fig1):
        with pytest.raises(MatchingError):
            api.diversified_matches(fig1.pattern, fig1.graph, 2, method="magic")

    def test_ranking_context(self, fig1):
        ctx = api.ranking_context(fig1.pattern, fig1.graph)
        assert ctx.normalisation == 11


class TestMultiOutput:
    def test_per_output_results(self, fig1):
        import copy

        pattern = copy.deepcopy(fig1.pattern)
        pm, db = fig1.query_nodes["PM"], fig1.query_nodes["DB"]
        pattern.set_output(pm, db)
        results = api.top_k_matches_multi(pattern, fig1.graph, 2)
        assert set(results) == {pm, db}
        assert fig1.node("PM2") in results[pm].matches
        # DB matches ranked by their own relevant sets.
        db_names = fig1.names(results[db].matches)
        assert db_names <= {"DB1", "DB2", "DB3"}

    def test_multi_output_scores_match_single_runs(self, fig1):
        import copy

        pattern = copy.deepcopy(fig1.pattern)
        pm, prg = fig1.query_nodes["PM"], fig1.query_nodes["PRG"]
        pattern.set_output(pm, prg)
        multi = api.top_k_matches_multi(pattern, fig1.graph, 2)

        single = copy.deepcopy(fig1.pattern)
        single.set_output(prg)
        expected = api.top_k_matches(single, fig1.graph, 2)
        assert multi[prg].total_relevance() == expected.total_relevance()

    def test_no_outputs_rejected(self, fig1):
        import copy

        pattern = copy.deepcopy(fig1.pattern)
        pattern.set_output()
        with pytest.raises(MatchingError):
            api.top_k_matches_multi(pattern, fig1.graph, 2)

    def test_relevance_fn_forwarded(self, fig1):
        import copy

        from repro.ranking.relevance import NormalisedRelevance

        pattern = copy.deepcopy(fig1.pattern)
        pm, db = fig1.query_nodes["PM"], fig1.query_nodes["DB"]
        pattern.set_output(pm, db)
        results = api.top_k_matches_multi(
            pattern, fig1.graph, 2, relevance_fn=NormalisedRelevance()
        )
        for result in results.values():
            assert all(0.0 <= s <= 1.0 for s in result.scores.values())

    def test_dag_patterns_route_through_topkdag(self, fig1, q1_dag):
        import copy

        pattern = copy.deepcopy(q1_dag)
        pattern.set_output(0, 2)  # PM and PRG
        multi = api.top_k_matches_multi(pattern, fig1.graph, 2)
        assert all(r.algorithm == "TopKDAG" for r in multi.values())
        # Per-output answers agree with dedicated single-output runs.
        single = copy.deepcopy(q1_dag)
        single.set_output(2)
        expected = api.top_k_matches(single, fig1.graph, 2)
        assert multi[2].total_relevance() == expected.total_relevance()
