"""End-to-end checks of every worked example in the paper (Examples 2-10).

The Figure 1 collaboration network was reconstructed so that all the
published numbers hold exactly; these tests pin them.
"""

from fractions import Fraction

import pytest

from repro import api
from repro.diversify.approx import top_k_diversified_approx
from repro.diversify.exact import optimal_diversified
from repro.diversify.heuristic import top_k_diversified_heuristic
from repro.ranking.context import RankingContext
from repro.ranking.distance import jaccard_distance
from repro.ranking.diversification import diversification_score
from repro.simulation.match import maximal_simulation
from repro.topk.cyclic import top_k
from repro.topk.dag import top_k_dag
from repro.topk.match_all import match_baseline


@pytest.fixture(scope="module")
def ctx(fig1):
    return RankingContext(fig1.pattern, fig1.graph)


class TestExample2And3:
    def test_graph_matches_pattern(self, fig1):
        result = maximal_simulation(fig1.pattern, fig1.graph)
        assert result.total

    def test_match_relation_has_15_pairs(self, fig1):
        result = maximal_simulation(fig1.pattern, fig1.graph)
        assert result.relation_size == 15

    def test_output_matches_are_the_four_pms(self, fig1):
        matches = api.output_matches(fig1.pattern, fig1.graph)
        assert fig1.names(matches) == {"PM1", "PM2", "PM3", "PM4"}

    def test_match_counts_per_query_node(self, fig1):
        result = maximal_simulation(fig1.pattern, fig1.graph)
        counts = {u: len(result.matches_of(u)) for u in fig1.pattern.nodes()}
        assert counts == {0: 4, 1: 3, 2: 4, 3: 4}  # PM, DB, PRG, ST


class TestExample4RelevantSets:
    EXPECTED = {
        "PM1": {"DB1", "PRG1", "ST1", "ST2"},
        "PM2": {"DB2", "DB3", "PRG2", "PRG3", "PRG4", "ST2", "ST3", "ST4"},
        "PM3": {"DB2", "DB3", "PRG2", "PRG3", "ST3", "ST4"},
        "PM4": {"DB2", "DB3", "PRG2", "PRG3", "ST3", "ST4"},
    }

    @pytest.mark.parametrize("pm", ["PM1", "PM2", "PM3", "PM4"])
    def test_relevant_set(self, fig1, ctx, pm):
        rset = ctx.relevant[fig1.node(pm)]
        assert fig1.names(rset) == self.EXPECTED[pm]

    def test_top2_total_relevance_is_14(self, fig1, ctx):
        result = match_baseline(fig1.pattern, fig1.graph, 2)
        assert result.total_relevance() == 14.0
        assert fig1.node("PM2") in result.matches


class TestExample5Distances:
    def test_pm3_pm4_indistinguishable(self, fig1, ctx):
        d = jaccard_distance(ctx.relevant[fig1.node("PM3")], ctx.relevant[fig1.node("PM4")])
        assert d == 0.0

    def test_pm1_pm2(self, fig1, ctx):
        d = jaccard_distance(ctx.relevant[fig1.node("PM1")], ctx.relevant[fig1.node("PM2")])
        assert abs(d - 10 / 11) < 1e-12

    def test_pm2_pm3(self, fig1, ctx):
        d = jaccard_distance(ctx.relevant[fig1.node("PM2")], ctx.relevant[fig1.node("PM3")])
        assert abs(d - 1 / 4) < 1e-12

    def test_pm1_pm3_completely_dissimilar(self, fig1, ctx):
        d = jaccard_distance(ctx.relevant[fig1.node("PM1")], ctx.relevant[fig1.node("PM3")])
        assert d == 1.0


class TestExample6LambdaRegimes:
    def test_normalisation_constant_is_11(self, ctx):
        assert ctx.normalisation == 11

    def test_lambda_zero_prefers_pure_relevance(self, fig1, ctx):
        best, _ = optimal_diversified(ctx, 2, lam=0.0)
        names = fig1.names(best)
        assert "PM2" in names and names <= {"PM2", "PM3", "PM4"}

    def test_lambda_one_prefers_pure_diversity(self, fig1, ctx):
        best, _ = optimal_diversified(ctx, 2, lam=1.0)
        assert fig1.names(best) in ({"PM1", "PM3"}, {"PM1", "PM4"})

    def test_middle_lambda_balances(self, fig1, ctx):
        best, _ = optimal_diversified(ctx, 2, lam=0.3)  # 4/33 < 0.3 < 0.5
        assert fig1.names(best) == {"PM1", "PM2"}

    def test_boundary_4_over_33(self, fig1, ctx):
        lam = float(Fraction(4, 33))
        below, _ = optimal_diversified(ctx, 2, lam=lam * 0.9)
        assert "PM2" in fig1.names(below) and "PM1" not in fig1.names(below)
        above, _ = optimal_diversified(ctx, 2, lam=min(0.49, lam * 1.5))
        assert fig1.names(above) == {"PM1", "PM2"}

    def test_above_half_prefers_pm1_pm3(self, fig1, ctx):
        best, _ = optimal_diversified(ctx, 2, lam=0.6)
        assert fig1.names(best) in ({"PM1", "PM3"}, {"PM1", "PM4"})


class TestExample7TopKDag:
    def test_top1_is_pm2_with_relevance_3(self, fig1, q1_dag):
        result = top_k_dag(q1_dag, fig1.graph, 1)
        assert fig1.names(result.matches) == {"PM2"}
        assert result.scores[fig1.node("PM2")] == 3.0

    def test_early_termination_fires(self, fig1, q1_dag):
        result = top_k_dag(q1_dag, fig1.graph, 1, batch_size=1)
        assert result.stats.terminated_early
        assert result.stats.inspected_matches < 4 or result.stats.visited_seeds < 7


class TestExample8TopKCyclic:
    def test_top2_relevance_matches_oracle(self, fig1):
        result = top_k(fig1.pattern, fig1.graph, 2)
        baseline = match_baseline(fig1.pattern, fig1.graph, 2)
        assert result.total_relevance() == baseline.total_relevance() == 14.0

    def test_pm2_always_included(self, fig1):
        result = top_k(fig1.pattern, fig1.graph, 2)
        assert fig1.node("PM2") in result.matches

    def test_cyclic_relevant_set_includes_self(self, fig1):
        # DB3 sits on the DB2->PRG2->DB3->PRG3 cycle: R(DB, DB3) contains DB3.
        ctx = RankingContext(fig1.pattern, fig1.graph, query_node=fig1.query_nodes["DB"])
        rset = ctx.relevant[fig1.node("DB3")]
        assert fig1.node("DB3") in rset
        assert fig1.names(rset) == {"ST3", "ST4", "DB2", "DB3", "PRG2", "PRG3"}


class TestExample9TopKDiv:
    def test_lambda_half_reaches_optimal_value(self, fig1, ctx):
        result = top_k_diversified_approx(fig1.pattern, fig1.graph, 2, lam=0.5)
        _, best = optimal_diversified(ctx, 2, lam=0.5)
        # At lam=0.5 both {PM1,PM3} and {PM1,PM2} score F = 16/11.
        assert abs(result.objective_value - best) < 1e-9
        assert abs(best - 16 / 11) < 1e-9

    def test_lambda_above_half_returns_pm1_pm3(self, fig1):
        result = top_k_diversified_approx(fig1.pattern, fig1.graph, 2, lam=0.6)
        assert fig1.names(result.matches) in ({"PM1", "PM3"}, {"PM1", "PM4"})


class TestExample10TopKDH:
    def test_low_lambda_returns_pm2_pm3(self, fig1):
        result = top_k_diversified_heuristic(fig1.pattern, fig1.graph, 2, lam=0.1)
        names = fig1.names(result.matches)
        assert "PM2" in names and names <= {"PM2", "PM3", "PM4"}

    def test_algorithm_name_reflects_pattern_class(self, fig1, q1_dag):
        cyclic = top_k_diversified_heuristic(fig1.pattern, fig1.graph, 2, lam=0.5)
        dag = top_k_diversified_heuristic(q1_dag, fig1.graph, 2, lam=0.5)
        assert cyclic.algorithm == "TopKDH"
        assert dag.algorithm == "TopKDAGDH"


class TestDiversificationScore:
    def test_score_matches_manual_f(self, fig1, ctx):
        pm1, pm3 = fig1.node("PM1"), fig1.node("PM3")
        score = diversification_score(ctx, [pm1, pm3], lam=0.5)
        manual = 0.5 * (4 / 11 + 6 / 11) + 2 * 0.5 / 1 * 1.0
        assert abs(score - manual) < 1e-12
