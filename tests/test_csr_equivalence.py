"""Property suite: the CSR fast path equals the dict reference path.

Three public entry points are pinned (the ISSUE's acceptance bar):
``maximal_simulation``, ``top_k_matches`` and ``diversified_matches``
must return identical results on randomized graphs and patterns —
including tombstoned nodes, predicate patterns and wildcard labels —
with ``optimized=True`` versus the reference path.

Comparison discipline:

* relations (``maximal_simulation``) are compared exactly;
* engine runs differing *only* in ``use_csr`` are deterministic twins —
  identical matches, scores and objective values;
* runs also differing in seed-selection strategy (``optimized=False``
  switches to random selection) are compared on the Proposition-3
  contract instead: same answer size and the same total true relevance.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api
from repro.graph import csr
from repro.graph.digraph import Graph
from repro.incremental.manager import MatchViewManager
from repro.patterns.pattern import Pattern
from repro.patterns.predicates import AttrCompare
from repro.ranking.context import RankingContext
from repro.simulation.candidates import WILDCARD_LABEL
from repro.simulation.match import maximal_simulation

from tests.conftest import make_random_graph
from tests.incremental.test_property_equivalence import random_op

pytestmark = pytest.mark.skipif(not csr.available(), reason="numpy unavailable")

SETTINGS = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

LABELS = "ABC"


def rich_random_graph(seed: int, num_nodes: int = 16, num_edges: int = 34) -> Graph:
    """A random labelled graph with attributes and tombstones."""
    rng = random.Random(seed * 977 + 13)
    g = make_random_graph(seed, num_nodes=num_nodes, num_edges=num_edges, labels=LABELS)
    for v in g.nodes():
        if rng.random() < 0.7:
            g.set_attrs(v, score=rng.randrange(5))
    for _ in range(rng.randrange(3)):
        live = [v for v in g.nodes() if g.is_live(v)]
        if len(live) <= 4:
            break
        g.remove_node(rng.choice(live))
    return g


def rich_random_pattern(seed: int, cyclic: bool) -> Pattern:
    """A random pattern mixing plain labels, wildcards and predicates."""
    rng = random.Random(seed * 131 + 7)
    num_nodes = rng.randrange(3, 5)
    p = Pattern()
    for i in range(num_nodes):
        roll = rng.random()
        if roll < 0.2:
            p.add_node(WILDCARD_LABEL)
        elif roll < 0.35:
            p.add_node(
                rng.choice(LABELS),
                predicate=AttrCompare("score", ">=", rng.randrange(3)),
            )
        else:
            p.add_node(rng.choice(LABELS))
    for child in range(1, num_nodes):
        p.add_edge(rng.randrange(child), child)
    for _ in range(2):
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a == b or p.has_edge(a, b):
            continue
        if not cyclic and b == 0:
            continue
        p.add_edge(a, b)
    p.set_output(0)
    return p


def true_relevance_sum(pattern, graph, matches) -> int:
    ctx = RankingContext(pattern, graph)
    return sum(len(ctx.relevant[v]) for v in matches)


class TestSimulationEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_fixpoint_paths_identical(self, seed):
        g = rich_random_graph(seed)
        q = rich_random_pattern(seed + 1, cyclic=seed % 2 == 0)
        fast = maximal_simulation(q, g, optimized=True)
        reference = maximal_simulation(q, g, optimized=False)
        assert fast.sim == reference.sim
        assert fast.total == reference.total

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_api_find_matches(self, seed):
        g = rich_random_graph(seed)
        q = rich_random_pattern(seed + 2, cyclic=True)
        assert (
            api.find_matches(q, g, optimized=True).sim
            == api.find_matches(q, g, optimized=False).sim
        )


class TestTopKEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000), k=st.integers(1, 4))
    @SETTINGS
    def test_csr_toggle_is_a_deterministic_twin(self, seed, k):
        g = rich_random_graph(seed)
        q = rich_random_pattern(seed + 3, cyclic=seed % 2 == 1)
        fast = api.top_k_matches(q, g, k)
        reference = api.top_k_matches(q, g, k, use_csr=False)
        assert fast.matches == reference.matches
        assert fast.scores == reference.scores

    @given(seed=st.integers(min_value=0, max_value=10_000), k=st.integers(1, 4))
    @SETTINGS
    def test_reference_algorithm_same_answer_quality(self, seed, k):
        g = rich_random_graph(seed)
        q = rich_random_pattern(seed + 3, cyclic=seed % 2 == 1)
        fast = api.top_k_matches(q, g, k)
        reference = api.top_k_matches(q, g, k, optimized=False)
        assert len(fast.matches) == len(reference.matches)
        assert true_relevance_sum(q, g, fast.matches) == true_relevance_sum(
            q, g, reference.matches
        )


class TestDiversifiedEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_heuristic_csr_toggle_is_a_deterministic_twin(self, seed):
        g = rich_random_graph(seed)
        q = rich_random_pattern(seed + 4, cyclic=seed % 2 == 0)
        fast = api.diversified_matches(q, g, 3, lam=0.5)
        reference = api.diversified_matches(q, g, 3, lam=0.5, use_csr=False)
        assert fast.matches == reference.matches
        assert fast.scores == reference.scores
        assert fast.objective_value == reference.objective_value

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @SETTINGS
    def test_approx_paths_identical(self, seed):
        g = rich_random_graph(seed)
        q = rich_random_pattern(seed + 5, cyclic=seed % 2 == 1)
        fast = api.diversified_matches(q, g, 3, method="approx", optimized=True)
        reference = api.diversified_matches(q, g, 3, method="approx", optimized=False)
        assert fast.matches == reference.matches
        assert fast.scores == reference.scores
        assert fast.objective_value == reference.objective_value


class TestUpdateStreamEquivalence:
    """Wildcard views under a delta stream: CSR and reference rebuilds agree.

    Also the regression test for wildcard-pattern event starvation: a
    wildcard view that misses deltas goes stale against the fresh
    fixpoint oracle immediately.
    """

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("threshold", [None, 0])
    def test_wildcard_view_follows_stream(self, seed, threshold):
        rng = random.Random(seed)
        graph = rich_random_graph(seed, num_nodes=12, num_edges=24)
        pattern = rich_random_pattern(seed + 6, cyclic=seed % 2 == 0)
        if all(pattern.label(u) != WILDCARD_LABEL for u in pattern.nodes()):
            # Force at least one wildcard node into the mix.
            extra = pattern.add_node(WILDCARD_LABEL)
            pattern.add_edge(0, extra)
        manager = MatchViewManager(graph)
        view = manager.register(pattern, k=3, recompute_threshold=threshold)
        mirror = manager.register(
            pattern, k=3, recompute_threshold=threshold, optimized=False,
            name="reference",
        )
        for _ in range(10):
            if not random_op(rng, graph):
                continue
            oracle = maximal_simulation(pattern, graph)
            assert view.simulation().sim == oracle.sim
            assert mirror.simulation().sim == oracle.sim
            assert view.matches() == mirror.matches()
        manager.close()
