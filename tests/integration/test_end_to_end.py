"""Integration tests: full pipeline on generated data."""

import pytest

from repro.bench.harness import run_algorithm
from repro.datasets.synthetic import synthetic_graph
from repro.ranking.context import RankingContext
from repro.topk.match_all import match_baseline
from repro.workloads.pattern_gen import random_cyclic_pattern, random_dag_pattern


@pytest.fixture(scope="module")
def dag_world():
    graph = synthetic_graph(900, 3600, seed=17, cyclic=False)
    pattern = random_dag_pattern(graph, 4, 5, seed=3, min_matches=15)
    return graph, pattern


@pytest.fixture(scope="module")
def cyclic_world():
    graph = synthetic_graph(900, 4500, seed=17, cyclic=True)
    pattern = random_cyclic_pattern(graph, 4, 6, seed=3, min_matches=15)
    return graph, pattern


class TestGeneratedDagPipeline:
    def test_all_relevance_algorithms_agree(self, dag_world):
        graph, pattern = dag_world
        ctx = RankingContext(pattern, graph)
        oracle = match_baseline(pattern, graph, 10, context=ctx)
        for name in ("TopKDAG", "TopKDAGnopt", "TopK", "TopKnopt"):
            record = run_algorithm(name, pattern, graph, 10)
            true_sum = sum(len(ctx.relevant[v]) for v in record.matches)
            assert true_sum == oracle.total_relevance(), name

    def test_early_termination_saves_inspections(self, dag_world):
        graph, pattern = dag_world
        oracle = match_baseline(pattern, graph, 10)
        record = run_algorithm("TopKDAG", pattern, graph, 10,
                               total_matches=oracle.stats.total_matches)
        assert record.match_ratio <= 1.0

    def test_diversified_pipeline(self, dag_world):
        graph, pattern = dag_world
        div = run_algorithm("TopKDiv", pattern, graph, 5, lam=0.5)
        heur = run_algorithm("TopKDAGDH", pattern, graph, 5, lam=0.5)
        assert len(div.matches) == 5 and len(heur.matches) == 5


class TestGeneratedCyclicPipeline:
    def test_relevance_algorithms_agree(self, cyclic_world):
        graph, pattern = cyclic_world
        ctx = RankingContext(pattern, graph)
        oracle = match_baseline(pattern, graph, 10, context=ctx)
        for name in ("TopK", "TopKnopt"):
            record = run_algorithm(name, pattern, graph, 10)
            true_sum = sum(len(ctx.relevant[v]) for v in record.matches)
            assert true_sum == oracle.total_relevance(), name

    def test_varying_k_consistency(self, cyclic_world):
        graph, pattern = cyclic_world
        ctx = RankingContext(pattern, graph)
        sums = []
        for k in (1, 3, 5, 8):
            record = run_algorithm("TopK", pattern, graph, k)
            oracle = match_baseline(pattern, graph, k, context=ctx)
            true_sum = sum(len(ctx.relevant[v]) for v in record.matches)
            assert true_sum == oracle.total_relevance()
            sums.append(true_sum)
        assert sums == sorted(sums)  # larger k keeps accumulating relevance

    def test_diversified_quality_relation(self, cyclic_world):
        graph, pattern = cyclic_world
        from repro.bench.harness import exact_objective

        div = run_algorithm("TopKDiv", pattern, graph, 5, lam=0.5)
        heur = run_algorithm("TopKDH", pattern, graph, 5, lam=0.5)
        f_div = exact_objective(pattern, graph, div.matches, 5, 0.5)
        f_heur = exact_objective(pattern, graph, heur.matches, 5, 0.5)
        assert f_heur >= 0.4 * f_div


class TestSerialisationRoundtrip:
    def test_query_same_results_after_json_roundtrip(self, dag_world, tmp_path):
        from repro.graph.io import load_json, save_json

        graph, pattern = dag_world
        path = tmp_path / "graph.json"
        save_json(graph, path)
        reloaded = load_json(path)
        a = run_algorithm("TopKDAG", pattern, graph, 5)
        b = run_algorithm("TopKDAG", pattern, reloaded, 5)
        assert a.matches == b.matches
