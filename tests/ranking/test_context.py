"""Tests for RankingContext derived data."""

import pytest

from repro.errors import RankingError
from repro.ranking.context import RankingContext


class TestContext:
    def test_matches_sorted(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        assert ctx.matches == sorted(ctx.matches)
        assert fig1.names(ctx.matches) == {"PM1", "PM2", "PM3", "PM4"}

    def test_normalisation_counts_reachable_candidates(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        assert ctx.normalisation == 11  # 3 DB + 4 PRG + 4 ST

    def test_reachable_query_nodes(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        assert ctx.reachable_query_nodes == {1, 2, 3}

    def test_relevance_accessors(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        pm2 = fig1.node("PM2")
        assert ctx.relevance(pm2) == 8
        assert abs(ctx.normalised_relevance(pm2) - 8 / 11) < 1e-12

    def test_relevance_of_non_match_raises(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        with pytest.raises(RankingError):
            ctx.relevance(fig1.node("ST1"))

    def test_descendant_matches(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        assert len(ctx.descendant_matches) == 11

    def test_query_node_override(self, fig1):
        db = fig1.query_nodes["DB"]
        ctx = RankingContext(fig1.pattern, fig1.graph, query_node=db)
        assert fig1.names(ctx.matches) == {"DB1", "DB2", "DB3"}
