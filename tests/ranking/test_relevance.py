"""Tests for relevance functions and bounds."""

from repro.ranking.context import RankingContext
from repro.ranking.relevance import (
    CardinalityRelevance,
    NormalisedRelevance,
    relevance_of_set,
    top_k_by_relevance,
)


class TestCardinality:
    def test_value_is_set_size(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        fn = CardinalityRelevance()
        pm2 = fig1.node("PM2")
        assert fn.value(ctx, pm2, ctx.relevant[pm2]) == 8.0

    def test_lower_on_partial_set(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        fn = CardinalityRelevance()
        assert fn.lower(ctx, 0, {1, 2}) == 2.0

    def test_upper_from_bound(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        assert CardinalityRelevance().upper(ctx, 0, 17) == 17.0

    def test_of_set_sums(self):
        assert CardinalityRelevance().of_set([1.0, 2.0, 3.0]) == 6.0


class TestNormalised:
    def test_scaling_by_cuo(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        fn = NormalisedRelevance()
        pm2 = fig1.node("PM2")
        assert abs(fn.value(ctx, pm2, ctx.relevant[pm2]) - 8 / 11) < 1e-12

    def test_upper_scaled(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        assert abs(NormalisedRelevance().upper(ctx, 0, 11) - 1.0) < 1e-12


class TestHelpers:
    def test_top_k_by_relevance_order(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        top = top_k_by_relevance(ctx, 2)
        assert fig1.node("PM2") == top[0]
        assert len(top) == 2

    def test_top_k_larger_than_matches(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        assert len(top_k_by_relevance(ctx, 99)) == 4

    def test_relevance_of_set(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        total = relevance_of_set(ctx, [fig1.node("PM2"), fig1.node("PM3")])
        assert total == 14.0

    def test_ties_break_by_node_id(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        top = top_k_by_relevance(ctx, 3)
        pm3, pm4 = fig1.node("PM3"), fig1.node("PM4")
        assert top[1:] == sorted([pm3, pm4])[:2] or top[1] == min(pm3, pm4)
