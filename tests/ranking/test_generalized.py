"""Tests for the generalised ranking functions (Section 3.4 table)."""

import pytest

from repro.ranking.context import RankingContext
from repro.ranking.generalized import (
    CommonNeighbours,
    DistanceBasedDiversity,
    JaccardCoefficient,
    NeighbourhoodDiversity,
    PreferentialAttachment,
    label_descendant_relevant_set,
)


@pytest.fixture()
def ctx(fig1):
    return RankingContext(fig1.pattern, fig1.graph)


class TestPreferentialAttachment:
    def test_value(self, fig1, ctx):
        fn = PreferentialAttachment()
        pm2 = fig1.node("PM2")
        # |R(u)| = 3 query nodes reachable from PM; |R*| = 8.
        assert fn.value(ctx, pm2, ctx.relevant[pm2]) == 24.0

    def test_upper(self, fig1, ctx):
        assert PreferentialAttachment().upper(ctx, 0, 5) == 15.0


class TestCommonNeighbours:
    def test_equals_set_size_for_simulation_sets(self, fig1, ctx):
        fn = CommonNeighbours()
        pm2 = fig1.node("PM2")
        assert fn.value(ctx, pm2, ctx.relevant[pm2]) == 8.0

    def test_upper_capped_by_match_count(self, fig1, ctx):
        assert CommonNeighbours().upper(ctx, 0, 999) == 11.0

    def test_counts_only_matches(self, fig1, ctx):
        fn = CommonNeighbours()
        ba1 = fig1.node("BA1")
        assert fn.value(ctx, 0, {ba1}) == 0.0


class TestJaccardCoefficient:
    def test_value_is_fraction_of_match_set(self, fig1, ctx):
        fn = JaccardCoefficient()
        pm2 = fig1.node("PM2")
        assert abs(fn.value(ctx, pm2, ctx.relevant[pm2]) - 8 / 11) < 1e-12

    def test_upper(self, fig1, ctx):
        fn = JaccardCoefficient()
        assert abs(fn.upper(ctx, 0, 5) - 5 / 11) < 1e-12
        assert fn.upper(ctx, 0, 999) == 1.0

    def test_monotone_on_match_subsets(self, fig1, ctx):
        fn = JaccardCoefficient()
        pm2 = fig1.node("PM2")
        full = ctx.relevant[pm2]
        partial = set(list(full)[:3])
        assert fn.value(ctx, pm2, partial) <= fn.value(ctx, pm2, full)


class TestNeighbourhoodDiversity:
    def test_disjoint_sets_max_diversity(self, fig1, ctx):
        fn = NeighbourhoodDiversity()
        assert fn.distance(ctx, 0, {1}, 1, {2}) == 1.0

    def test_overlap_scaled_by_graph_size(self, fig1, ctx):
        fn = NeighbourhoodDiversity()
        n = fig1.graph.num_nodes
        d = fn.distance(ctx, 0, {1, 2}, 1, {1, 2})
        assert abs(d - (1 - 2 / n)) < 1e-12


class TestDistanceBasedDiversity:
    def test_same_node_zero(self, fig1, ctx):
        fn = DistanceBasedDiversity()
        assert fn.distance(ctx, 5, set(), 5, set()) == 0.0

    def test_unreachable_is_one(self, fig1, ctx):
        fn = DistanceBasedDiversity()
        pm1, pm2 = fig1.node("PM1"), fig1.node("PM2")
        assert fn.distance(ctx, pm1, set(), pm2, set()) == 1.0

    def test_direct_edge_zero(self, fig1, ctx):
        fn = DistanceBasedDiversity()
        pm1, db1 = fig1.node("PM1"), fig1.node("DB1")
        assert fn.distance(ctx, pm1, set(), db1, set()) == 0.0

    def test_symmetric_via_min_direction(self, fig1, ctx):
        fn = DistanceBasedDiversity()
        pm1, st1 = fig1.node("PM1"), fig1.node("ST1")
        assert fn.distance(ctx, pm1, set(), st1, set()) == fn.distance(ctx, st1, set(), pm1, set())


class TestGeneralisedRelevantSet:
    def test_superset_of_simulation_relevant_set(self, fig1, ctx):
        pm2 = fig1.node("PM2")
        generalised = label_descendant_relevant_set(ctx, pm2)
        assert set(ctx.relevant[pm2]) <= set(generalised)

    def test_only_pattern_labels_included(self, fig1, ctx):
        pm1 = fig1.node("PM1")
        generalised = label_descendant_relevant_set(ctx, pm1)
        labels = {fig1.graph.label(v) for v in generalised}
        assert labels <= {"DB", "PRG", "ST"}
