"""Tests for the diversification objective F."""

import pytest

from repro.errors import RankingError
from repro.ranking.context import RankingContext
from repro.ranking.diversification import (
    DiversificationObjective,
    check_lambda,
    diversification_score,
)


class TestValidation:
    @pytest.mark.parametrize("lam", [-0.1, 1.1])
    def test_lambda_out_of_range(self, lam):
        with pytest.raises(RankingError):
            check_lambda(lam)

    def test_bad_k(self):
        with pytest.raises(RankingError):
            DiversificationObjective(lam=0.5, k=0)


class TestObjective:
    def test_lambda_zero_is_pure_relevance(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        obj = DiversificationObjective(lam=0.0, k=2)
        obj.prepare(ctx)
        pm2, pm3 = fig1.node("PM2"), fig1.node("PM3")
        assert abs(obj.score_matches(ctx, [pm2, pm3]) - 14 / 11) < 1e-12

    def test_lambda_one_is_pure_diversity(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        obj = DiversificationObjective(lam=1.0, k=2)
        obj.prepare(ctx)
        pm1, pm3 = fig1.node("PM1"), fig1.node("PM3")
        assert abs(obj.score_matches(ctx, [pm1, pm3]) - 2.0) < 1e-12

    def test_k1_has_no_diversity_term(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        obj = DiversificationObjective(lam=0.7, k=1)
        obj.prepare(ctx)
        pm2 = fig1.node("PM2")
        assert abs(obj.score_matches(ctx, [pm2]) - 0.3 * 8 / 11) < 1e-12

    def test_diversity_scale(self):
        assert DiversificationObjective(lam=0.5, k=3).diversity_scale == 0.5
        assert DiversificationObjective(lam=0.5, k=1).diversity_scale == 0.0

    def test_pair_objective_sums_to_f(self, fig1):
        # Section 5.1: summing F' over all pairs of S recovers F(S).
        ctx = RankingContext(fig1.pattern, fig1.graph)
        k = 3
        obj = DiversificationObjective(lam=0.4, k=k)
        obj.prepare(ctx)
        members = [fig1.node("PM1"), fig1.node("PM2"), fig1.node("PM3")]
        pair_sum = 0.0
        for i, v1 in enumerate(members):
            for v2 in members[i + 1:]:
                pair_sum += obj.pair_objective(ctx, v1, ctx.relevant[v1], v2, ctx.relevant[v2])
        assert abs(pair_sum - obj.score_matches(ctx, members)) < 1e-12

    def test_partial_rsets_supported(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        obj = DiversificationObjective(lam=0.5, k=2)
        obj.prepare(ctx)
        score = obj.score(ctx, [1, 2], {1: {5}, 2: {6}})
        assert score > 0

    def test_convenience_wrapper_defaults_k_to_len(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        pm1, pm3 = fig1.node("PM1"), fig1.node("PM3")
        score = diversification_score(ctx, [pm1, pm3], lam=1.0)
        assert abs(score - 2.0) < 1e-12


class TestNonSubmodularity:
    def test_f_is_not_submodular(self, fig1):
        # Section 3.4 Remarks: F violates the submodularity inequality.
        ctx = RankingContext(fig1.pattern, fig1.graph)
        matches = ctx.matches
        found_violation = False
        for lam in (0.5, 0.8):
            for x in matches:
                small = [m for m in matches if m != x][:1]
                big = [m for m in matches if m != x][:2]
                k = len(big) + 1
                obj = DiversificationObjective(lam=lam, k=k)
                obj.prepare(ctx)
                gain_small = obj.score_matches(ctx, small + [x]) - obj.score_matches(ctx, small)
                gain_big = obj.score_matches(ctx, big + [x]) - obj.score_matches(ctx, big)
                if gain_big > gain_small + 1e-12:
                    found_violation = True
        assert found_violation
