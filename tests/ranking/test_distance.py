"""Tests for the Jaccard distance and pairwise helpers."""

from repro.ranking.context import RankingContext
from repro.ranking.distance import (
    JaccardDistance,
    distance_sum,
    jaccard_distance,
    pairwise_distances,
)


class TestJaccard:
    def test_disjoint_sets_distance_one(self):
        assert jaccard_distance({1, 2}, {3}) == 1.0

    def test_equal_sets_distance_zero(self):
        assert jaccard_distance({1, 2}, {1, 2}) == 0.0

    def test_both_empty_distance_zero(self):
        assert jaccard_distance(set(), set()) == 0.0

    def test_empty_vs_nonempty_distance_one(self):
        assert jaccard_distance(set(), {1}) == 1.0

    def test_partial_overlap(self):
        assert abs(jaccard_distance({1, 2, 3}, {3, 4}) - 0.75) < 1e-12


class TestPairwise:
    def test_pairwise_keys_sorted(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        dists = pairwise_distances(ctx, ctx.matches)
        assert len(dists) == 6  # C(4,2)
        assert all(a < b for a, b in dists)

    def test_distance_sum(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        matches = [fig1.node("PM1"), fig1.node("PM2"), fig1.node("PM3")]
        total = distance_sum(ctx, matches)
        assert abs(total - (10 / 11 + 1.0 + 0.25)) < 1e-12

    def test_distance_function_object(self, fig1):
        ctx = RankingContext(fig1.pattern, fig1.graph)
        fn = JaccardDistance()
        d = fn.distance(ctx, 0, {1}, 1, {1})
        assert d == 0.0
