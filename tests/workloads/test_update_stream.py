"""Tests for the random update-stream generator."""

import pytest

from repro.errors import BenchmarkError
from repro.graph.digraph import Graph
from repro.workloads.update_stream import (
    random_update_stream,
    single_edge_stream,
    stream_summary,
)

from tests.conftest import make_random_graph


class TestValidity:
    def test_stream_applies_cleanly(self):
        graph = make_random_graph(3, num_nodes=20, num_edges=40)
        ops = random_update_stream(graph, 60, seed=1)
        assert len(ops) == 60
        graph.apply_delta(ops)  # raises on any invalid op

    def test_deterministic_in_seed(self):
        graph = make_random_graph(4, num_nodes=15, num_edges=30)
        assert random_update_stream(graph, 30, seed=9) == random_update_stream(
            graph, 30, seed=9
        )
        assert random_update_stream(graph, 30, seed=9) != random_update_stream(
            graph, 30, seed=10
        )

    def test_generation_does_not_mutate_the_graph(self):
        graph = make_random_graph(5, num_nodes=15, num_edges=30)
        before = (graph.num_nodes, set(graph.edges()))
        random_update_stream(graph, 40, seed=0)
        assert (graph.num_nodes, set(graph.edges())) == before


class TestMixes:
    def test_single_edge_stream_has_only_edge_ops(self):
        graph = make_random_graph(6, num_nodes=20, num_edges=40)
        ops = single_edge_stream(graph, 50, seed=2)
        summary = stream_summary(ops)
        assert set(summary) <= {"add_edge", "remove_edge"}
        assert sum(summary.values()) == 50
        graph.apply_delta(ops)

    def test_churn_labels_restrict_edge_endpoints(self):
        graph = make_random_graph(7, num_nodes=20, num_edges=40, labels="ABC")
        ops = single_edge_stream(graph, 40, seed=3, churn_labels=["A", "B"])
        for op in ops:
            assert graph.label(op.src) in {"A", "B"}
            assert graph.label(op.dst) in {"A", "B"}

    def test_bad_mix_rejected(self):
        graph = make_random_graph(8)
        with pytest.raises(BenchmarkError):
            random_update_stream(
                graph, 10, p_add_edge=0, p_remove_edge=0, p_add_node=0, p_remove_node=0
            )

    def test_unsatisfiable_stream_raises_instead_of_spinning(self):
        # Edges-only churn restricted to a label that does not exist:
        # no op kind ever has a valid move.
        graph = make_random_graph(8, labels="ABC")
        with pytest.raises(BenchmarkError, match="stalled"):
            single_edge_stream(graph, 5, churn_labels=["Z"])

    def test_node_ops_present_in_default_mix(self):
        graph = make_random_graph(9, num_nodes=30, num_edges=60)
        summary = stream_summary(random_update_stream(graph, 400, seed=4))
        assert summary.get("add_node", 0) > 0
        assert summary.get("remove_node", 0) > 0
