"""Tests for the hand-built paper queries."""

from repro.datasets.youtube import youtube_graph
from repro.simulation.match import maximal_simulation
from repro.workloads.paper_queries import collaboration_pattern, youtube_q1, youtube_q2


class TestPaperQueries:
    def test_collaboration_pattern_is_fig1_q(self):
        q = collaboration_pattern()
        assert q.shape == (4, 6)

    def test_q1_is_cyclic_with_music_output(self):
        q = youtube_q1()
        assert not q.is_dag()
        assert q.label(q.output_node) == "music"

    def test_q2_is_dag_with_comedy_output(self):
        q = youtube_q2()
        assert q.is_dag()
        assert q.label(q.output_node) == "comedy"

    def test_q1_runs_on_surrogate(self):
        g = youtube_graph(scale=0.3)
        result = maximal_simulation(youtube_q1(), g)
        # Predicate filtering applies; matches may legitimately be empty,
        # but the computation must be well-formed either way.
        assert isinstance(result.total, bool)

    def test_q2_predicates_filter_candidates(self):
        from repro.simulation.candidates import compute_candidates

        g = youtube_graph(scale=0.3)
        q = youtube_q2()
        cands = compute_candidates(q, g)
        for v in cands.of(0):
            assert g.attr(v, "rate") > 3
