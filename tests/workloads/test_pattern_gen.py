"""Tests for extraction-based pattern generation."""

import pytest

from repro.datasets.synthetic import synthetic_graph
from repro.errors import DatasetError
from repro.simulation.match import maximal_simulation
from repro.workloads.pattern_gen import (
    pattern_suite,
    random_cyclic_pattern,
    random_dag_pattern,
)


@pytest.fixture(scope="module")
def dag_graph():
    return synthetic_graph(800, 3200, seed=9, cyclic=False)


@pytest.fixture(scope="module")
def cyclic_graph():
    return synthetic_graph(800, 4000, seed=9, cyclic=True)


class TestDagPatterns:
    def test_extracted_pattern_matches(self, dag_graph):
        q = random_dag_pattern(dag_graph, 4, 5, seed=0)
        result = maximal_simulation(q, dag_graph)
        assert result.total
        assert len(result.matches_of(q.output_node)) >= 1

    def test_is_dag_with_root_output(self, dag_graph):
        q = random_dag_pattern(dag_graph, 4, 5, seed=1)
        assert q.is_dag()
        assert q.output_node == 0
        assert q.analysis.reachable_from(0, include_self=True) == frozenset(q.nodes())

    def test_min_matches_respected(self, dag_graph):
        q = random_dag_pattern(dag_graph, 4, 4, seed=2, min_matches=10)
        result = maximal_simulation(q, dag_graph)
        assert len(result.matches_of(q.output_node)) >= 10

    def test_bad_edge_count(self, dag_graph):
        with pytest.raises(DatasetError):
            random_dag_pattern(dag_graph, 4, 2)

    def test_deterministic(self, dag_graph):
        a = random_dag_pattern(dag_graph, 4, 5, seed=3)
        b = random_dag_pattern(dag_graph, 4, 5, seed=3)
        assert list(a.edges()) == list(b.edges()) and a.labels() == b.labels()


class TestCyclicPatterns:
    def test_extracted_pattern_matches_and_is_cyclic(self, cyclic_graph):
        q = random_cyclic_pattern(cyclic_graph, 4, 6, seed=0)
        assert not q.is_dag()
        result = maximal_simulation(q, cyclic_graph)
        assert result.total

    def test_canonical_shape(self, cyclic_graph):
        # Output above the cycle (Fig. 1's shape).
        q = random_cyclic_pattern(cyclic_graph, 4, 6, seed=1)
        analysis = q.analysis
        nontrivial = set(analysis.nontrivial_components())
        assert nontrivial
        assert analysis.cond.comp_of[q.output_node] not in nontrivial

    def test_dag_graph_rejected(self, dag_graph):
        with pytest.raises(DatasetError):
            random_cyclic_pattern(dag_graph, 4, 6)

    def test_bad_edge_count(self, cyclic_graph):
        with pytest.raises(DatasetError):
            random_cyclic_pattern(cyclic_graph, 4, 3)


class TestPatternSuite:
    def test_suite_sizes(self, dag_graph):
        suite = pattern_suite(dag_graph, [(3, 2), (4, 4)], cyclic=False, per_shape=2)
        assert len(suite) == 4
        assert all(q.num_nodes in (3, 4) for q in suite)
