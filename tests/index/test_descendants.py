"""Tests for the per-graph descendant-count index."""

from repro.graph.digraph import Graph
from repro.index.descendants import hop_counts, unbounded_counts


def chain_with_cycle():
    # 0 -> 1 -> 2 <-> 3, labels A B C C
    g = Graph()
    g.add_nodes(["A", "B", "C", "C"])
    g.add_edges([(0, 1), (1, 2), (2, 3), (3, 2)])
    return g


class TestHopCounts:
    def test_depth_one_counts_children(self):
        g = chain_with_cycle()
        counts = hop_counts(g, g.labels.get("B"), 1)
        assert counts[0] == 1 and counts[1] == 0

    def test_depth_two_reaches_further(self):
        g = chain_with_cycle()
        c_label = g.labels.get("C")
        assert hop_counts(g, c_label, 1)[0] == 0
        assert hop_counts(g, c_label, 2)[0] == 1
        assert hop_counts(g, c_label, 3)[0] == 2

    def test_counts_are_distinct_nodes(self):
        # Diamond: two paths to the same node must count it once.
        g = Graph()
        g.add_nodes(["A", "B", "B", "C"])
        g.add_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        assert hop_counts(g, g.labels.get("C"), 2)[0] == 1

    def test_cached_state_extends(self):
        g = chain_with_cycle()
        lid = g.labels.get("C")
        hop_counts(g, lid, 1)
        counts3 = hop_counts(g, lid, 3)
        assert counts3[1] == 2

    def test_within_filter_restricts_paths(self):
        # A -> X -> C: C only reachable through an X-labelled hop.
        g = Graph()
        g.add_nodes(["A", "X", "C"])
        g.add_edges([(0, 1), (1, 2)])
        lid = g.labels.get("C")
        unrestricted = hop_counts(g, lid, 2)
        assert unrestricted[0] == 1
        allowed = frozenset({g.labels.get("A"), g.labels.get("C")})
        restricted = hop_counts(g, lid, 2, within=allowed)
        assert restricted[0] == 0


class TestUnboundedCounts:
    def test_counts_all_descendants(self):
        g = chain_with_cycle()
        counts = unbounded_counts(g, g.labels.get("C"))
        assert counts[0] == 2

    def test_cycle_members_count_each_other(self):
        g = chain_with_cycle()
        counts = unbounded_counts(g, g.labels.get("C"))
        assert counts[2] == 2 and counts[3] == 2  # self via cycle + partner

    def test_self_loop_counts_self(self):
        g = Graph()
        v = g.add_node("A")
        g.add_edge(v, v)
        assert unbounded_counts(g, g.labels.get("A"))[v] == 1

    def test_acyclic_node_does_not_count_self(self):
        g = Graph()
        g.add_nodes(["A", "A"])
        g.add_edge(0, 1)
        counts = unbounded_counts(g, g.labels.get("A"))
        assert counts[0] == 1 and counts[1] == 0

    def test_within_filter(self):
        g = Graph()
        g.add_nodes(["A", "X", "C"])
        g.add_edges([(0, 1), (1, 2)])
        allowed = frozenset({g.labels.get("A"), g.labels.get("C")})
        assert unbounded_counts(g, g.labels.get("C"), within=allowed)[0] == 0

    def test_results_cached_per_graph(self):
        g = chain_with_cycle()
        lid = g.labels.get("C")
        assert unbounded_counts(g, lid) is unbounded_counts(g, lid)
