"""Tests for the BoundIndex / SimBoundIndex soundness."""

import pytest

from repro.errors import MatchingError
from repro.index.label_index import BOUND_STRATEGIES, BoundIndex, SimBoundIndex
from repro.ranking.context import RankingContext
from repro.simulation.candidates import compute_candidates
from repro.simulation.match import maximal_simulation

from tests.conftest import make_random_graph, make_random_pattern


class TestBoundIndex:
    def test_unknown_strategy_rejected(self, fig1):
        cands = compute_candidates(fig1.pattern, fig1.graph)
        with pytest.raises(MatchingError):
            BoundIndex(fig1.pattern, fig1.graph, cands, "bogus")

    def test_global_bound_is_cuo(self, fig1):
        cands = compute_candidates(fig1.pattern, fig1.graph)
        index = BoundIndex(fig1.pattern, fig1.graph, cands, "global")
        assert index.global_bound(0) == 11

    @pytest.mark.parametrize("strategy", BOUND_STRATEGIES)
    def test_soundness_on_figure1(self, fig1, strategy):
        cands = compute_candidates(fig1.pattern, fig1.graph)
        index = BoundIndex(fig1.pattern, fig1.graph, cands, strategy)
        ctx = RankingContext(fig1.pattern, fig1.graph)
        for v in ctx.matches:
            assert index.upper(0, v) >= len(ctx.relevant[v])

    @pytest.mark.parametrize("strategy", BOUND_STRATEGIES)
    @pytest.mark.parametrize("seed", range(5))
    def test_soundness_on_random_graphs(self, strategy, seed):
        g = make_random_graph(seed, num_nodes=16, num_edges=34)
        q = make_random_pattern(seed + 7, num_nodes=4, extra_edges=2, cyclic=True)
        cands = compute_candidates(q, g)
        if cands.any_empty():
            pytest.skip("no candidates")
        result = maximal_simulation(q, g, cands)
        if not result.total:
            pytest.skip("no match")
        ctx = RankingContext(q, g, result)
        index = BoundIndex(q, g, cands, strategy)
        for v in ctx.matches:
            assert index.upper(q.output_node, v) >= len(ctx.relevant[v])

    def test_hop_tighter_than_global(self, fig1):
        cands = compute_candidates(fig1.pattern, fig1.graph)
        hop = BoundIndex(fig1.pattern, fig1.graph, cands, "hop")
        glob = BoundIndex(fig1.pattern, fig1.graph, cands, "global")
        for v in cands.lists[0]:
            assert hop.upper(0, v) <= glob.upper(0, v)


class TestSimBoundIndex:
    @pytest.mark.parametrize("seed", range(8))
    def test_soundness_on_random_graphs(self, seed):
        g = make_random_graph(seed, num_nodes=16, num_edges=34)
        q = make_random_pattern(seed + 7, num_nodes=4, extra_edges=2, cyclic=seed % 2 == 0)
        result = maximal_simulation(q, g)
        if not result.total:
            pytest.skip("no match")
        ctx = RankingContext(q, g, result)
        index = SimBoundIndex(q, g, [set(s) for s in result.sim])
        for v in ctx.matches:
            assert index.upper(q.output_node, v) >= len(ctx.relevant[v])

    def test_tighter_than_label_bounds(self, fig1):
        result = maximal_simulation(fig1.pattern, fig1.graph)
        cands = compute_candidates(fig1.pattern, fig1.graph)
        sim_index = SimBoundIndex(fig1.pattern, fig1.graph, [set(s) for s in result.sim])
        label_index = BoundIndex(fig1.pattern, fig1.graph, cands, "hop")
        for v in result.sim[0]:
            assert sim_index.upper(0, v) <= label_index.upper(0, v)

    def test_exact_on_figure1_pm1(self, fig1):
        result = maximal_simulation(fig1.pattern, fig1.graph)
        index = SimBoundIndex(fig1.pattern, fig1.graph, [set(s) for s in result.sim])
        # PM1's region is isolated: the bound should be exactly its degree of reach.
        assert index.upper(0, fig1.node("PM1")) == 4
