"""Tests for the targeted descendant-index invalidation hooks."""

import pytest

from repro.graph import csr
from repro.graph.digraph import Graph
from repro.index.descendants import hop_counts, unbounded_counts
from repro.index.invalidation import (
    attach_index_invalidation,
    csr_cache_keys,
    descendant_cache_keys,
    invalidate_csr_snapshots,
    invalidate_descendant_indexes,
)


def chain_graph():
    g = Graph()
    a = g.add_node("A")
    b = g.add_node("B")
    c = g.add_node("C")
    g.add_edge(a, b)
    g.add_edge(b, c)
    return g, (a, b, c)


class TestTargetedInvalidation:
    def test_only_descendant_keys_dropped(self):
        g, _ = chain_graph()
        hop_counts(g, g.labels.get("C"), depth=2)
        g.derived["user-cache"] = {"keep": "me"}
        assert descendant_cache_keys(g)
        dropped = invalidate_descendant_indexes(g)
        assert dropped > 0
        assert descendant_cache_keys(g) == []
        assert g.derived["user-cache"] == {"keep": "me"}

    def test_attached_hook_preserves_unrelated_derived_state(self):
        # With the hook attached, mutations drop only index caches —
        # the graph's default blanket clear is replaced.
        g, (a, b, c) = chain_graph()
        attach_index_invalidation(g)
        unbounded_counts(g, g.labels.get("C"))
        g.derived["user-cache"] = {"keep": "me"}
        g.remove_edge(b, c)
        assert descendant_cache_keys(g) == []
        assert g.derived["user-cache"] == {"keep": "me"}

    def test_without_hook_blanket_clear_still_applies(self):
        g, (a, b, c) = chain_graph()
        g.derived["user-cache"] = "anything"
        g.remove_edge(b, c)
        assert g.derived == {}

    def test_failed_and_noop_mutations_keep_caches_warm(self):
        from repro.errors import GraphError

        g, (a, b, c) = chain_graph()
        label_c = g.labels.get("C")
        unbounded_counts(g, label_c)
        assert descendant_cache_keys(g)
        with pytest.raises(GraphError):
            g.remove_edge(c, a)  # nonexistent: graph unchanged
        g.add_edge(a, b)  # duplicate: silent no-op
        assert descendant_cache_keys(g)  # caches survived both

    def test_counts_recompute_after_edge_mutation(self):
        g, (a, b, c) = chain_graph()
        label_c = g.labels.get("C")
        assert unbounded_counts(g, label_c)[a] == 1
        detach = attach_index_invalidation(g)
        g.remove_edge(b, c)
        # The hook dropped the cache; a fresh query sees the new graph.
        assert unbounded_counts(g, label_c)[a] == 0
        g.add_edge(a, c)
        assert unbounded_counts(g, label_c)[a] == 1
        detach()

    def test_hook_fires_on_node_ops(self):
        g, (a, b, c) = chain_graph()
        label_b = g.labels.get("B")
        attach_index_invalidation(g)
        assert hop_counts(g, label_b, depth=1)[a] == 1
        g.remove_node(b)
        assert hop_counts(g, label_b, depth=1)[a] == 0
        new = g.add_node("B")
        g.add_edge(a, new)
        assert hop_counts(g, label_b, depth=1)[a] == 1

    @pytest.mark.skipif(not csr.available(), reason="numpy unavailable")
    def test_hook_covers_csr_snapshots(self):
        g, (a, b, c) = chain_graph()
        detach = attach_index_invalidation(g)
        snap = g.snapshot()
        assert csr_cache_keys(g)
        g.derived["user-cache"] = "survives"
        g.remove_edge(b, c)
        assert csr_cache_keys(g) == []
        assert g.derived["user-cache"] == "survives"
        fresh = g.snapshot()
        assert fresh is not snap
        assert fresh.num_edges == g.num_edges
        detach()

    @pytest.mark.skipif(not csr.available(), reason="numpy unavailable")
    def test_targeted_csr_drop_on_demand(self):
        g, _ = chain_graph()
        g.snapshot()
        g.derived["user-cache"] = "kept"
        assert invalidate_csr_snapshots(g) == 1
        assert csr_cache_keys(g) == []
        assert g.derived["user-cache"] == "kept"

    def test_detach_restores_blanket_clearing(self):
        g, (a, b, c) = chain_graph()
        detach = attach_index_invalidation(g)
        detach()
        label_c = g.labels.get("C")
        unbounded_counts(g, label_c)
        g.derived["user-cache"] = "anything"
        g.remove_edge(b, c)
        # Back on the safe default: everything cleared, queries fresh.
        assert "user-cache" not in g.derived
        assert unbounded_counts(g, label_c)[a] == 0
