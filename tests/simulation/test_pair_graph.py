"""Tests for the match-pair graph."""

from repro.simulation.match import maximal_simulation
from repro.simulation.pair_graph import build_pair_graph, pair_subgraph_nodes


class TestPairGraph:
    def test_nodes_are_match_pairs(self, fig1):
        result = maximal_simulation(fig1.pattern, fig1.graph)
        pg = build_pair_graph(fig1.pattern, fig1.graph, result.sim)
        assert pg.num_pairs == 15

    def test_edges_follow_both_graphs(self, fig1):
        result = maximal_simulation(fig1.pattern, fig1.graph)
        pg = build_pair_graph(fig1.pattern, fig1.graph, result.sim)
        for pair_node in range(pg.num_pairs):
            u, v = pg.pair_of(pair_node)
            for child in pg.successors(pair_node):
                u2, v2 = pg.pair_of(child)
                assert fig1.pattern.has_edge(u, u2)
                assert fig1.graph.has_edge(v, v2)

    def test_restriction_to_query_nodes(self, fig1):
        result = maximal_simulation(fig1.pattern, fig1.graph)
        st = fig1.query_nodes["ST"]
        pg = build_pair_graph(fig1.pattern, fig1.graph, result.sim, [st])
        assert pg.num_pairs == 4
        assert all(pg.pair_of(i)[0] == st for i in range(pg.num_pairs))

    def test_id_lookup(self, fig1):
        result = maximal_simulation(fig1.pattern, fig1.graph)
        pg = build_pair_graph(fig1.pattern, fig1.graph, result.sim)
        pm2 = fig1.node("PM2")
        pid = pg.id_of(0, pm2)
        assert pg.pair_of(pid) == (0, pm2)
        assert pg.data_node(pid) == pm2
        assert pg.id_of(0, fig1.node("ST1")) is None

    def test_reachable_pair_nodes(self, fig1):
        result = maximal_simulation(fig1.pattern, fig1.graph)
        pg = build_pair_graph(fig1.pattern, fig1.graph, result.sim)
        root = pg.id_of(0, fig1.node("PM1"))
        reachable = pair_subgraph_nodes(pg, [root])
        names = {fig1.names([pg.data_node(p)]).pop() for p in reachable}
        assert names == {"PM1", "DB1", "PRG1", "ST1", "ST2"}
