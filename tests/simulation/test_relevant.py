"""Tests for relevant-set computation."""

import pytest

from repro.graph.digraph import Graph
from repro.patterns.pattern import pattern_from_edges
from repro.simulation.match import maximal_simulation
from repro.simulation.relevant import (
    induced_result_graph,
    relevance_values,
    relevant_sets,
)


class TestRelevantSets:
    def test_leaf_matches_have_empty_sets(self, fig1):
        result = maximal_simulation(fig1.pattern, fig1.graph)
        st = fig1.query_nodes["ST"]
        sets = relevant_sets(fig1.pattern, fig1.graph, result.sim, st)
        assert all(len(s) == 0 for s in sets.values())

    def test_relevance_values_are_sizes(self, fig1):
        result = maximal_simulation(fig1.pattern, fig1.graph)
        values = relevance_values(fig1.pattern, fig1.graph, result.sim, 0)
        assert values[fig1.node("PM2")] == 8
        assert values[fig1.node("PM1")] == 4

    def test_chain_accumulates(self):
        g = Graph()
        g.add_nodes(["A", "B", "C"])
        g.add_edges([(0, 1), (1, 2)])
        q = pattern_from_edges(["A", "B", "C"], [(0, 1), (1, 2)], 0)
        result = maximal_simulation(q, g)
        sets = relevant_sets(q, g, result.sim, 0)
        assert sets[0] == {1, 2}

    def test_two_cycle_shares_and_includes_self(self):
        g = Graph()
        g.add_nodes(["A", "B"])
        g.add_edges([(0, 1), (1, 0)])
        q = pattern_from_edges(["A", "B"], [(0, 1), (1, 0)], 0)
        result = maximal_simulation(q, g)
        sets = relevant_sets(q, g, result.sim, 0)
        assert sets[0] == {0, 1}  # A reaches itself around the cycle

    def test_diamond_counts_shared_node_once(self):
        g = Graph()
        g.add_nodes(["A", "B", "C", "D"])
        g.add_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        q = pattern_from_edges(["A", "B", "C", "D"], [(0, 1), (0, 2), (1, 3), (2, 3)], 0)
        result = maximal_simulation(q, g)
        sets = relevant_sets(q, g, result.sim, 0)
        assert sets[0] == {1, 2, 3}

    def test_induced_result_graph(self, fig1):
        result = maximal_simulation(fig1.pattern, fig1.graph)
        sub, mapping = induced_result_graph(
            fig1.pattern, fig1.graph, result.sim, 0, fig1.node("PM1")
        )
        assert sub.num_nodes == 5  # PM1 + its 4 relevant matches
        assert fig1.node("PM1") in mapping
