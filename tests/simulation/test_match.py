"""Tests for the simulation fixpoint."""

import pytest

from repro.graph.digraph import Graph
from repro.patterns.pattern import pattern_from_edges
from repro.simulation.match import maximal_simulation, naive_simulation

from tests.conftest import make_random_graph, make_random_pattern


def chain_graph():
    g = Graph()
    g.add_nodes(["A", "B", "C", "B"])
    g.add_edges([(0, 1), (1, 2), (0, 3)])  # A -> B -> C and A -> B(dead end)
    return g


class TestBasics:
    def test_forward_constraint_prunes(self):
        q = pattern_from_edges(["A", "B", "C"], [(0, 1), (1, 2)], 0)
        result = maximal_simulation(q, chain_graph())
        assert result.sim[1] == {1}  # node 3 has no C child
        assert result.total

    def test_total_false_empties_matches(self):
        g = Graph()
        g.add_nodes(["A", "B"])  # no edge: B never matched under A->B? B matches trivially
        q = pattern_from_edges(["A", "B"], [(0, 1)], 0)
        result = maximal_simulation(q, g)
        # A has no B child -> sim(A) empty -> not total -> M = empty
        assert not result.total
        assert result.matches_of(0) == set()
        assert result.relation_size == 0

    def test_greatest_fixpoint_kept_for_diagnostics(self):
        g = Graph()
        g.add_nodes(["A", "B"])
        q = pattern_from_edges(["A", "B"], [(0, 1)], 0)
        result = maximal_simulation(q, g)
        assert result.sim[1] == {1}  # B still simulates B even though M is empty

    def test_pairs_iteration(self, fig1):
        result = maximal_simulation(fig1.pattern, fig1.graph)
        pairs = list(result.pairs())
        assert len(pairs) == 15
        assert all(v in result.sim[u] for u, v in pairs)

    def test_contains(self, fig1):
        result = maximal_simulation(fig1.pattern, fig1.graph)
        assert (0, fig1.node("PM1")) in result
        assert (0, fig1.node("ST1")) not in result

    def test_self_loop_pattern(self):
        g = Graph()
        g.add_nodes(["A", "A"])
        g.add_edge(0, 1)
        g.add_edge(1, 0)
        q = pattern_from_edges(["A"], [], 0)
        q.add_edge(0, 0)
        result = maximal_simulation(q, g)
        assert result.sim[0] == {0, 1}

    def test_self_loop_pattern_requires_cycle(self):
        g = Graph()
        g.add_nodes(["A", "A"])
        g.add_edge(0, 1)  # no cycle
        q = pattern_from_edges(["A"], [], 0)
        q.add_edge(0, 0)
        result = maximal_simulation(q, g)
        assert not result.total


class TestAgainstNaiveOracle:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_instances(self, seed):
        g = make_random_graph(seed)
        q = make_random_pattern(seed + 100, num_nodes=4, extra_edges=2, cyclic=seed % 2 == 0)
        fast = maximal_simulation(q, g)
        slow = naive_simulation(q, g)
        assert fast.sim == slow
