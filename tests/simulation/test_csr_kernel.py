"""The array-backed simulation kernel equals the dict reference fixpoint."""

import pytest

from repro.datasets.examples import figure1
from repro.graph import csr
from repro.graph.digraph import Graph
from repro.patterns.pattern import Pattern, pattern_from_edges
from repro.patterns.predicates import AttrCompare
from repro.simulation import csr_kernel
from repro.simulation.candidates import compute_candidates
from repro.simulation.match import maximal_simulation, naive_simulation

from tests.conftest import make_random_graph, make_random_pattern

pytestmark = pytest.mark.skipif(not csr.available(), reason="numpy unavailable")


def assert_paths_agree(pattern: Pattern, graph: Graph) -> None:
    fast = maximal_simulation(pattern, graph, optimized=True)
    reference = maximal_simulation(pattern, graph, optimized=False)
    assert fast.sim == reference.sim
    assert fast.total == reference.total
    assert fast.candidates.lists == reference.candidates.lists


class TestEquivalence:
    def test_figure1(self):
        fig = figure1()
        assert_paths_agree(fig.pattern, fig.graph)

    @pytest.mark.parametrize("seed", range(40))
    def test_random_graphs(self, seed):
        g = make_random_graph(seed, num_nodes=16, num_edges=34)
        q = make_random_pattern(seed + 7, num_nodes=4, extra_edges=2,
                                cyclic=seed % 2 == 0)
        assert_paths_agree(q, g)
        assert maximal_simulation(q, g).sim == naive_simulation(q, g)

    @pytest.mark.parametrize("seed", range(15))
    def test_tombstoned_nodes(self, seed):
        g = make_random_graph(seed, num_nodes=16, num_edges=30)
        g.remove_node(seed % 16)
        g.remove_node((seed + 5) % 16)
        q = make_random_pattern(seed + 3, num_nodes=3, extra_edges=1)
        assert_paths_agree(q, g)

    def test_wildcard_pattern(self):
        g = make_random_graph(11, num_nodes=14, num_edges=30)
        q = pattern_from_edges(["*", "A", "*"], [(0, 1), (1, 2)], output=0)
        assert_paths_agree(q, g)

    def test_predicate_pattern(self):
        g = make_random_graph(5, num_nodes=14, num_edges=30)
        for v in g.nodes():
            g.set_attrs(v, score=v % 4)
        q = Pattern()
        a = q.add_node("A", predicate=AttrCompare("score", ">=", 2), output=True)
        b = q.add_node("B")
        q.add_edge(a, b)
        assert_paths_agree(q, g)

    def test_self_loop_pattern_edge(self):
        g = Graph()
        for label in "AAB":
            g.add_node(label)
        g.add_edges([(0, 0), (0, 1), (1, 2), (2, 1)])
        q = Pattern()
        a = q.add_node("A", output=True)
        q.add_edge(a, a)
        assert_paths_agree(q, g)

    def test_empty_candidate_sets(self):
        g = make_random_graph(3, num_nodes=8, num_edges=12, labels="AB")
        q = pattern_from_edges(["Z", "A"], [(0, 1)], output=0)
        assert_paths_agree(q, g)

    def test_pattern_without_edges(self):
        g = make_random_graph(9, num_nodes=8, num_edges=10)
        q = pattern_from_edges(["A", "B"], [], output=0)
        assert_paths_agree(q, g)


class TestCascadeTiers:
    """Force each cascade tier and check the fixpoint is unchanged."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize(
        "batch_cutoff, sweep_fraction",
        [(0, 1e9), (10**9, 1e9), (10**9, 0.0)],
        ids=["all-batched", "all-scalar", "all-sweep"],
    )
    def test_tiers_agree(self, monkeypatch, seed, batch_cutoff, sweep_fraction):
        monkeypatch.setattr(csr_kernel, "BATCH_CUTOFF", batch_cutoff)
        monkeypatch.setattr(csr_kernel, "SWEEP_FRACTION", sweep_fraction)
        g = make_random_graph(seed, num_nodes=20, num_edges=46)
        q = make_random_pattern(seed + 13, num_nodes=4, extra_edges=2,
                                cyclic=seed % 2 == 0)
        assert_paths_agree(q, g)

    def test_sweep_tier_runs_even_with_tiny_sweep_cutoff(self, monkeypatch):
        # sweep_cutoff floors at 256, so use a heavy enough instance.
        monkeypatch.setattr(csr_kernel, "SWEEP_FRACTION", 0.0)
        g = make_random_graph(42, num_nodes=60, num_edges=300, labels="AB")
        q = make_random_pattern(17, num_nodes=4, extra_edges=2, cyclic=True)
        assert_paths_agree(q, g)


class TestSharedCandidates:
    def test_kernel_accepts_precomputed_candidates(self):
        g = make_random_graph(2, num_nodes=12, num_edges=24)
        q = make_random_pattern(8, num_nodes=3, extra_edges=1)
        candidates = compute_candidates(q, g, optimized=True)
        fast = maximal_simulation(q, g, candidates, optimized=True)
        reference = maximal_simulation(q, g, candidates, optimized=False)
        assert fast.sim == reference.sim

    def test_candidate_paths_agree(self):
        g = make_random_graph(21, num_nodes=15, num_edges=30)
        g.remove_node(4)
        q = pattern_from_edges(["*", "A", "B"], [(0, 1), (1, 2)], output=0)
        fast = compute_candidates(q, g, optimized=True)
        reference = compute_candidates(q, g, optimized=False)
        assert fast.lists == reference.lists
        assert fast.sets == reference.sets
