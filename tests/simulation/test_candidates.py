"""Tests for candidate computation can(u)."""

from repro.graph.digraph import Graph
from repro.patterns.builder import PatternBuilder
from repro.patterns.pattern import pattern_from_edges
from repro.simulation.candidates import candidate_statistics, compute_candidates


def labelled_graph():
    g = Graph()
    g.add_node("A", score=10)
    g.add_node("A", score=1)
    g.add_node("B")
    return g


class TestCandidates:
    def test_label_filter(self):
        q = pattern_from_edges(["A", "B"], [(0, 1)], 0)
        cands = compute_candidates(q, labelled_graph())
        assert cands.of(0) == [0, 1]
        assert cands.of(1) == [2]

    def test_predicate_filter(self):
        q = PatternBuilder().node("a", "A", conditions="score>5", output=True).build()
        cands = compute_candidates(q, labelled_graph())
        assert cands.of(0) == [0]

    def test_wildcard_label(self):
        q = PatternBuilder().node("any", "*", output=True).build()
        cands = compute_candidates(q, labelled_graph())
        assert cands.of(0) == [0, 1, 2]

    def test_membership_and_counts(self):
        q = pattern_from_edges(["A", "B"], [(0, 1)], 0)
        cands = compute_candidates(q, labelled_graph())
        assert cands.is_candidate(0, 1) and not cands.is_candidate(0, 2)
        assert cands.count(0) == 2
        assert cands.total == 3

    def test_any_empty(self):
        q = pattern_from_edges(["A", "Z"], [(0, 1)], 0)
        cands = compute_candidates(q, labelled_graph())
        assert cands.any_empty()

    def test_statistics(self):
        q = pattern_from_edges(["A", "B"], [(0, 1)], 0)
        stats = candidate_statistics(compute_candidates(q, labelled_graph()))
        assert stats == {"total": 3, "min": 1, "max": 2, "mean": 1.5}
