"""The shard-parallel kernel arm ≡ the serial CSR kernel (the oracle).

Sharding only changes *where* the counting scans run — node-range
shards on a thread (or process) pool — never what they compute: the
cascade is level-synchronous, so shards scan frozen membership views
independently and merge at the round barrier.  This suite pins that
equivalence, plus the shard-geometry invariants the runner relies on.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import csr
from repro.simulation.match import maximal_simulation

from tests.conftest import make_random_graph, make_random_pattern

pytestmark = pytest.mark.skipif(not csr.available(), reason="requires numpy")

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@given(seed=st.integers(0, 10_000), num_shards=st.integers(2, 9))
@SETTINGS
def test_shard_bounds_partition_the_node_range(seed, num_shards):
    graph = make_random_graph(seed, num_nodes=20, num_edges=40)
    snap = graph.snapshot()
    bounds = snap.shard_bounds(num_shards)
    assert bounds[0] == 0 and bounds[-1] == snap.num_nodes
    assert bounds == sorted(bounds)
    assert len(bounds) - 1 <= num_shards
    assert snap.shard_bounds(num_shards) is bounds  # cached


@given(seed=st.integers(0, 10_000), num_shards=st.integers(2, 6))
@SETTINGS
def test_out_counts_range_tiles_the_serial_scan(seed, num_shards):
    import numpy as np

    graph = make_random_graph(seed, num_nodes=18, num_edges=36)
    snap = graph.snapshot()
    rng = np.random.default_rng(seed)
    membership = (rng.random(snap.num_nodes) < 0.5).astype(np.uint8)
    whole = snap.out_counts(membership)
    bounds = snap.shard_bounds(num_shards)
    tiled = np.empty_like(whole)
    for lo, hi in zip(bounds, bounds[1:]):
        snap.out_counts_range(membership, lo, hi, tiled)
        np.testing.assert_array_equal(
            snap.out_counts_range(membership, lo, hi), whole[lo:hi]
        )
    np.testing.assert_array_equal(tiled, whole)


@given(seed=st.integers(0, 10_000), num_shards=st.integers(2, 6))
@SETTINGS
def test_shard_label_slices_window_the_buckets(seed, num_shards):
    graph = make_random_graph(seed, num_nodes=20, num_edges=30)
    snap = graph.snapshot()
    bounds = snap.shard_bounds(num_shards)
    per_shard = snap.shard_label_slices(num_shards)
    assert len(per_shard) == len(bounds) - 1
    for label_id in range(snap.num_labels):
        lo, hi = snap.label_offsets[label_id], snap.label_offsets[label_id + 1]
        bucket = snap.label_nodes[lo:hi].tolist()
        gathered = []
        for shard, (blo, bhi) in enumerate(zip(bounds, bounds[1:])):
            start, stop = per_shard[shard][label_id]
            window = snap.label_nodes[start:stop].tolist()
            assert all(blo <= v < bhi for v in window)
            gathered.extend(window)
        assert gathered == bucket


@given(
    seed=st.integers(0, 10_000),
    shards=st.integers(2, 7),
    cyclic=st.booleans(),
)
@SETTINGS
def test_sharded_fixpoint_equals_serial(seed, shards, cyclic):
    graph = make_random_graph(seed, num_nodes=20, num_edges=45)
    pattern = make_random_pattern(seed, num_nodes=3, extra_edges=2, cyclic=cyclic)
    serial = maximal_simulation(pattern, graph)
    sharded = maximal_simulation(pattern, graph, sim_shards=shards)
    assert sharded.sim == serial.sim
    assert sharded.total == serial.total


def test_sharded_fixpoint_heavy_rounds_equal_serial(monkeypatch):
    """Force the vectorised full-sweep tier through the sharded arm."""
    import repro.simulation.csr_kernel as kernel

    monkeypatch.setattr(kernel, "SWEEP_FRACTION", 0.0)
    for seed in (1, 5, 11):
        graph = make_random_graph(seed, num_nodes=24, num_edges=60)
        pattern = make_random_pattern(seed, num_nodes=4, extra_edges=2, cyclic=True)
        serial = maximal_simulation(pattern, graph)
        sharded = maximal_simulation(pattern, graph, sim_shards=4)
        assert sharded.sim == serial.sim


def test_process_backend_equals_serial():
    graph = make_random_graph(4, num_nodes=18, num_edges=40)
    pattern = make_random_pattern(4, num_nodes=3, extra_edges=2, cyclic=True)
    serial = maximal_simulation(pattern, graph)
    sharded = maximal_simulation(
        pattern, graph, sim_shards=2, shard_backend="process"
    )
    assert sharded.sim == serial.sim


def test_shard_runner_gating_and_caching():
    from repro.errors import MatchingError
    from repro.parallel import ShardRunner, shard_runner

    graph = make_random_graph(6, num_nodes=16, num_edges=30)
    snap = graph.snapshot()
    assert shard_runner(snap, 0) is None
    assert shard_runner(snap, 1) is None
    runner = shard_runner(snap, 3)
    assert runner is shard_runner(snap, 3)  # cached per (shards, backend)
    assert runner is not shard_runner(snap, 4)
    with pytest.raises(MatchingError):
        ShardRunner(snap, 3, backend="fibers")
    with pytest.raises(MatchingError):
        ShardRunner(snap, 1)


def test_more_shards_than_nodes_degrades_gracefully():
    graph = make_random_graph(8, num_nodes=5, num_edges=8)
    pattern = make_random_pattern(8, num_nodes=3, extra_edges=1, cyclic=False)
    serial = maximal_simulation(pattern, graph)
    sharded = maximal_simulation(pattern, graph, sim_shards=64)
    assert sharded.sim == serial.sim
