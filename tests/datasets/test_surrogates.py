"""Tests for the Amazon / Citation / YouTube surrogates."""

import pytest

from repro.datasets import load_dataset
from repro.datasets.amazon import amazon_graph
from repro.datasets.citation import citation_graph
from repro.datasets.youtube import youtube_graph
from repro.errors import DatasetError
from repro.graph.algorithms import is_dag, strongly_connected_components


SMALL = 0.05  # 300-node versions for fast tests


class TestRegistry:
    def test_load_by_name(self):
        g = load_dataset("amazon", scale=SMALL)
        assert g.num_nodes > 0

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("imdb")

    def test_seed_override_changes_graph(self):
        a = load_dataset("amazon", scale=SMALL, seed=1)
        b = load_dataset("amazon", scale=SMALL, seed=2)
        assert list(a.edges()) != list(b.edges())


class TestAmazon:
    def test_attributes(self):
        g = amazon_graph(scale=SMALL)
        attrs = g.attrs(0)
        assert {"title", "group", "salesrank"} <= set(attrs)
        assert attrs["group"] == g.label(0)

    def test_scale_validation(self):
        with pytest.raises(DatasetError):
            amazon_graph(scale=0)

    def test_has_cycles_for_cyclic_patterns(self):
        g = amazon_graph(scale=0.2)
        assert any(len(c) > 1 for c in strongly_connected_components(g))


class TestCitation:
    def test_is_dag(self):
        assert is_dag(citation_graph(scale=SMALL))

    def test_years_respect_citation_direction(self):
        g = citation_graph(scale=SMALL)
        for src, dst in g.edges():
            assert g.attr(src, "year") >= g.attr(dst, "year")

    def test_attributes(self):
        g = citation_graph(scale=SMALL)
        assert {"title", "year", "venue", "authors"} <= set(g.attrs(0))


class TestYouTube:
    def test_attributes(self):
        g = youtube_graph(scale=SMALL)
        attrs = g.attrs(0)
        assert {"age", "category", "views", "rate"} <= set(attrs)
        assert attrs["category"] == g.label(0)

    def test_rate_range(self):
        g = youtube_graph(scale=SMALL)
        assert all(0.5 <= g.attr(v, "rate") <= 5.0 for v in g.nodes())

    def test_medium_scc_structure(self):
        g = youtube_graph(scale=0.4)
        sizes = [len(c) for c in strongly_connected_components(g)]
        largest = max(sizes)
        assert 2 < largest < g.num_nodes // 2
