"""Tests for the Figure 1 fixture itself."""

from repro.datasets.examples import example7_pattern, figure1


class TestFigure1:
    def test_node_lookup(self):
        fig = figure1()
        assert fig.graph.label(fig.node("PM2")) == "PM"

    def test_names_roundtrip(self):
        fig = figure1()
        ids = [fig.node("DB1"), fig.node("ST4")]
        assert fig.names(ids) == {"DB1", "ST4"}

    def test_pattern_shape_matches_paper(self):
        fig = figure1()
        assert fig.pattern.shape == (4, 6)
        assert not fig.pattern.is_dag()  # DB <-> PRG cycle

    def test_graph_size(self):
        fig = figure1()
        assert fig.graph.num_nodes == 18

    def test_example7_pattern_is_dag(self):
        q = example7_pattern()
        assert q.is_dag()
        assert q.shape == (3, 3)

    def test_deterministic(self):
        assert list(figure1().graph.edges()) == list(figure1().graph.edges())
