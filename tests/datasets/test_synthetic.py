"""Tests for the synthetic generator (linkage model)."""

import pytest

from repro.datasets.synthetic import (
    preferential_attachment_digraph,
    synthetic_graph,
    synthetic_series,
)
from repro.errors import DatasetError
from repro.graph.algorithms import is_dag, strongly_connected_components


class TestSyntheticGraph:
    def test_exact_sizes(self):
        g = synthetic_graph(500, 1500, seed=1)
        assert g.num_nodes == 500 and g.num_edges == 1500

    def test_fifteen_label_alphabet(self):
        g = synthetic_graph(500, 1500, seed=1)
        labels = {g.label(v) for v in g.nodes()}
        assert labels <= {f"L{i}" for i in range(15)}

    def test_num_labels_param(self):
        g = synthetic_graph(200, 500, num_labels=3, seed=1)
        assert {g.label(v) for v in g.nodes()} <= {"L0", "L1", "L2"}

    def test_bad_num_labels(self):
        with pytest.raises(DatasetError):
            synthetic_graph(100, 200, num_labels=99)

    def test_cyclic_mode_has_cycles(self):
        g = synthetic_graph(500, 2500, seed=2, cyclic=True)
        assert any(len(c) > 1 for c in strongly_connected_components(g))

    def test_dag_mode(self):
        assert is_dag(synthetic_graph(300, 900, seed=2, cyclic=False))

    def test_frozen(self):
        assert synthetic_graph(50, 100).frozen

    def test_series_scales(self):
        series = synthetic_series(100, 200, [1.0, 2.0], seed=3)
        assert series[0][1].num_nodes == 100
        assert series[1][1].num_nodes == 200


class TestPreferentialAttachment:
    def test_too_few_nodes(self):
        with pytest.raises(DatasetError):
            preferential_attachment_digraph(1, 0, ["A"])

    def test_impossible_edge_count(self):
        with pytest.raises(DatasetError):
            preferential_attachment_digraph(3, 100, ["A"])

    def test_forward_only_is_dag(self):
        g = preferential_attachment_digraph(200, 600, ["A", "B"], seed=4, forward_only=True)
        assert is_dag(g)

    def test_locality_window_caps_scc_size(self):
        g = preferential_attachment_digraph(
            600, 3000, ["A", "B"], seed=5, mutual_prob=0.5, locality_window=50,
            intra_block_share=0.4,
        )
        assert max(len(c) for c in strongly_connected_components(g)) <= 50

    def test_degree_skew_exists(self):
        g = preferential_attachment_digraph(800, 4000, ["A"], seed=6, hub_fraction=0.02, hub_share=0.4)
        out_degrees = sorted((g.out_degree(v) for v in g.nodes()), reverse=True)
        assert out_degrees[0] >= 5 * max(1, out_degrees[len(out_degrees) // 2])
